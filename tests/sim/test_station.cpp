// ServiceStation unit behaviour plus the canonical M/M/1 closed-form check.
#include "sim/station.h"

#include <functional>
#include <memory>
#include <vector>

#include "dist/deterministic.h"
#include "dist/exponential.h"
#include <gtest/gtest.h>

namespace mclat::sim {
namespace {

TEST(ServiceStation, ServesSingleJob) {
  Simulator s;
  std::vector<Departure> done;
  ServiceStation st(s, std::make_unique<dist::Deterministic>(2.0),
                    dist::Rng(1), [&](const Departure& d) { done.push_back(d); });
  s.schedule_at(1.0, [&] { st.arrive(42); });
  s.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].job_id, 42u);
  EXPECT_DOUBLE_EQ(done[0].arrival, 1.0);
  EXPECT_DOUBLE_EQ(done[0].service_start, 1.0);
  EXPECT_DOUBLE_EQ(done[0].departure, 3.0);
  EXPECT_DOUBLE_EQ(done[0].waiting_time(), 0.0);
  EXPECT_DOUBLE_EQ(done[0].sojourn_time(), 2.0);
}

TEST(ServiceStation, FifoOrderAndQueueing) {
  Simulator s;
  std::vector<Departure> done;
  ServiceStation st(s, std::make_unique<dist::Deterministic>(1.0),
                    dist::Rng(1), [&](const Departure& d) { done.push_back(d); });
  s.schedule_at(0.0, [&] {
    st.arrive(1);
    st.arrive(2);
    st.arrive(3);
  });
  s.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].job_id, 1u);
  EXPECT_EQ(done[1].job_id, 2u);
  EXPECT_EQ(done[2].job_id, 3u);
  EXPECT_DOUBLE_EQ(done[1].waiting_time(), 1.0);
  EXPECT_DOUBLE_EQ(done[2].waiting_time(), 2.0);
  EXPECT_DOUBLE_EQ(done[2].sojourn_time(), 3.0);
}

TEST(ServiceStation, UtilizationMeasuresBusyFraction) {
  Simulator s;
  ServiceStation st(s, std::make_unique<dist::Deterministic>(1.0),
                    dist::Rng(1), [](const Departure&) {});
  s.schedule_at(0.0, [&] { st.arrive(1); });
  s.schedule_at(3.0, [&] { st.arrive(2); });
  s.run();
  // Busy during [0,1] and [3,4] out of [0,4].
  EXPECT_NEAR(st.utilization(4.0), 0.5, 1e-12);
  EXPECT_EQ(st.completed(), 2u);
}

TEST(ServiceStation, MM1MeanSojournMatchesClosedForm) {
  // M/M/1 with λ = 700, μ = 1000: E[T] = 1/(μ-λ) ≈ 3.333 ms.
  Simulator s;
  const double lambda = 700.0;
  const double mu = 1000.0;
  ServiceStation st(s, std::make_unique<dist::Exponential>(mu), dist::Rng(2),
                    [](const Departure&) {});
  dist::Rng arr(3);
  std::uint64_t id = 0;
  std::function<void()> arrive = [&] {
    st.arrive(id++);
    s.schedule_in(arr.exponential(lambda), arrive);
  };
  s.schedule_in(arr.exponential(lambda), arrive);
  s.run_until(300.0);
  const double want = 1.0 / (mu - lambda);
  EXPECT_NEAR(st.sojourn_stats().mean(), want, 0.05 * want);
  // E[W] = ρ/(μ-λ)
  EXPECT_NEAR(st.waiting_stats().mean(), 0.7 * want, 0.07 * want);
  EXPECT_NEAR(st.utilization(s.now()), 0.7, 0.02);
}

TEST(ServiceStation, MD1WaitingMatchesPollaczekKhinchine) {
  // M/D/1: E[W] = ρ·s/(2(1-ρ)) with deterministic service s.
  Simulator s;
  const double lambda = 600.0;
  const double service = 1.0 / 1000.0;
  ServiceStation st(s, std::make_unique<dist::Deterministic>(service),
                    dist::Rng(4), [](const Departure&) {});
  dist::Rng arr(5);
  std::uint64_t id = 0;
  std::function<void()> arrive = [&] {
    st.arrive(id++);
    s.schedule_in(arr.exponential(lambda), arrive);
  };
  s.schedule_in(arr.exponential(lambda), arrive);
  s.run_until(300.0);
  const double rho = lambda * service;
  const double want = rho * service / (2.0 * (1.0 - rho));
  EXPECT_NEAR(st.waiting_stats().mean(), want, 0.08 * want);
}

TEST(ServiceStation, RejectsNullArguments) {
  Simulator s;
  EXPECT_THROW(ServiceStation(s, nullptr, dist::Rng(1),
                              [](const Departure&) {}),
               std::invalid_argument);
  EXPECT_THROW(ServiceStation(s, std::make_unique<dist::Deterministic>(1.0),
                              dist::Rng(1), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::sim
