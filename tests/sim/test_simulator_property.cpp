// test_simulator_property.cpp — randomized cross-check of the event kernel
// against a naive reference calendar.
//
// The kernel (flat 4-ary heap + generation-tagged slots + inline callbacks)
// must be observationally identical to the simplest possible implementation:
// a sorted vector ordered by (time, insertion-order). These tests drive both
// through long random schedule/cancel/fire interleavings and require the
// same firing sequence, the same clock, and the same pending() accounting —
// plus targeted probes of the tricky corners: FIFO tie-breaks, cancellation
// after firing, re-entrant cancel of the firing event, slot recycling, and
// the small-buffer spill path for oversized captures.
#include "sim/simulator.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace mclat::sim {
namespace {

/// The reference calendar: a vector kept sorted by (time, seq) with a
/// stable insertion counter — self-evidently the (time, insertion-order)
/// determinism contract, with O(n) everything.
class ReferenceCalendar {
 public:
  /// Schedules a tagged marker event; returns its handle.
  std::uint64_t schedule(double t, int tag) {
    events_.push_back(Ev{t, next_seq_++, tag});
    return events_.back().seq;
  }

  /// O(n) cancel; no-op (returns false) if absent — i.e. fired/cancelled.
  bool cancel(std::uint64_t seq) {
    const auto it =
        std::find_if(events_.begin(), events_.end(),
                     [seq](const Ev& e) { return e.seq == seq; });
    if (it == events_.end()) return false;
    events_.erase(it);
    return true;
  }

  /// Removes and returns the (time, seq)-least event's tag.
  std::optional<std::pair<double, int>> fire_next() {
    if (events_.empty()) return std::nullopt;
    const auto it = std::min_element(
        events_.begin(), events_.end(), [](const Ev& a, const Ev& b) {
          return a.t != b.t ? a.t < b.t : a.seq < b.seq;
        });
    const auto out = std::make_pair(it->t, it->tag);
    events_.erase(it);
    return out;
  }

  [[nodiscard]] std::size_t pending() const { return events_.size(); }

 private:
  struct Ev {
    double t;
    std::uint64_t seq;
    int tag;
  };
  std::vector<Ev> events_;
  std::uint64_t next_seq_ = 0;
};

/// One random interleaving: schedules (with deliberate time collisions),
/// cancels, and partial draining, mirrored into both calendars; then a full
/// drain. The firing tag sequences must match element-for-element.
void run_interleaving(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Simulator sim;
  ReferenceCalendar ref;
  std::vector<int> sim_fired;
  std::vector<int> ref_fired;

  // Live handles for cancellation, kept in lockstep: the i-th entry refers
  // to the same logical event in both calendars.
  std::vector<std::pair<EventId, std::uint64_t>> live;
  std::vector<double> recent_times;
  int next_tag = 0;

  const auto schedule_one = [&] {
    double t;
    if (!recent_times.empty() && rng() % 4 == 0) {
      // Reuse an earlier timestamp to force (time, seq) ties.
      t = recent_times[rng() % recent_times.size()];
      if (t < sim.now()) t = sim.now();
    } else {
      t = sim.now() +
          static_cast<double>(rng() % 1000) / 256.0;  // exactly representable
    }
    recent_times.push_back(t);
    const int tag = next_tag++;
    const EventId id = sim.schedule_at(t, [tag, &sim_fired] {
      sim_fired.push_back(tag);
    });
    live.emplace_back(id, ref.schedule(t, tag));
  };

  for (int op = 0; op < 2000; ++op) {
    const auto r = rng() % 10;
    if (r < 5) {
      schedule_one();
    } else if (r < 7 && !live.empty()) {
      const auto pick = rng() % live.size();
      const auto [sim_id, ref_id] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      // The handle may name an already-fired event; both sides must treat
      // that as a no-op.
      sim.cancel(sim_id);
      ref.cancel(ref_id);
    } else if (r < 8 && !live.empty()) {
      // Double-cancel: idempotence on a handle we also keep for later.
      const auto [sim_id, ref_id] = live[rng() % live.size()];
      const bool ref_was_live = ref.cancel(ref_id);
      sim.cancel(sim_id);
      sim.cancel(sim_id);
      (void)ref_was_live;
    } else {
      // Drain a few events.
      const auto n = 1 + rng() % 4;
      for (std::uint64_t i = 0; i < n; ++i) {
        const bool fired = sim.step();
        const auto expect = ref.fire_next();
        ASSERT_EQ(fired, expect.has_value());
        if (fired) {
          ASSERT_EQ(sim.now(), expect->first);
          ref_fired.push_back(expect->second);
          // Stale fired-event handles stay in `live`; the matching sim
          // handle must stay dead even though its slot can be recycled.
        }
      }
    }
    ASSERT_EQ(sim.pending(), ref.pending()) << "op " << op;
  }

  // Drain the remainder in lockstep, then compare the complete firing
  // sequences — the byte-for-byte (time, insertion-order) contract.
  while (auto e = ref.fire_next()) {
    ASSERT_TRUE(sim.step());
    ASSERT_EQ(sim.now(), e->first);
    ref_fired.push_back(e->second);
  }
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim_fired, ref_fired);
}

TEST(SimulatorProperty, MatchesReferenceCalendarAcrossSeeds) {
  for (const std::uint64_t seed : {11ull, 42ull, 1234ull, 987654321ull}) {
    run_interleaving(seed);
  }
}

/// Full-sequence comparison: drive both calendars, collect both firing tag
/// sequences independently, compare wholesale (including FIFO tie-breaks).
TEST(SimulatorProperty, FiringSequenceIdenticalIncludingTies) {
  for (const std::uint64_t seed : {7ull, 77ull, 777ull}) {
    std::mt19937_64 rng(seed);
    Simulator sim;
    ReferenceCalendar ref;
    std::vector<int> sim_fired;

    std::vector<std::pair<EventId, std::uint64_t>> handles;
    // A deliberately small time domain: heavy collisions, so the FIFO
    // tie-break carries most of the ordering.
    for (int i = 0; i < 500; ++i) {
      const double t = static_cast<double>(rng() % 8);
      const int tag = i;
      handles.emplace_back(
          sim.schedule_at(t, [tag, &sim_fired] { sim_fired.push_back(tag); }),
          ref.schedule(t, tag));
    }
    // Cancel a third of them.
    for (std::size_t i = 0; i < handles.size(); i += 3) {
      sim.cancel(handles[i].first);
      ref.cancel(handles[i].second);
    }

    std::vector<int> ref_fired;
    while (auto e = ref.fire_next()) ref_fired.push_back(e->second);
    sim.run();
    EXPECT_EQ(sim_fired, ref_fired);
    EXPECT_EQ(sim.events_executed(), sim_fired.size());
  }
}

TEST(SimulatorProperty, CancelAfterFireIsNoOp) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(1.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.cancel(id);  // already fired: must not disturb anything
  s.cancel(id);
  // The slot is recycled; the stale id must not cancel the new tenant.
  const EventId id2 = s.schedule_at(2.0, [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_NE(id, id2);
}

TEST(SimulatorProperty, ReentrantCancelOfFiringEventIsNoOp) {
  Simulator s;
  int fired = 0;
  EventId self = kInvalidEventId;
  self = s.schedule_at(1.0, [&] {
    ++fired;
    s.cancel(self);  // cancelling the event that is running right now
    s.cancel(self);
  });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending(), 0u);
  // The calendar survives: scheduling still works afterwards.
  s.schedule_at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorProperty, ScheduleFromInsideCallbackReusesSlotsSafely) {
  // A self-rescheduling chain cycles one logical event through the slot
  // free list thousands of times; ids must never collide with live events.
  Simulator s;
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    if (fired < 5000) s.schedule_in(0.001, tick);
  };
  s.schedule_in(0.0, tick);
  s.run();
  EXPECT_EQ(fired, 5000);
  EXPECT_EQ(s.events_executed(), 5000u);
}

// ---- small-buffer spill -------------------------------------------------

struct SpillProbe {
  std::shared_ptr<int> token;
  char payload[128];  // forces the capture past the 64-byte inline buffer
};

TEST(SimulatorProperty, OversizedCaptureSpillsToHeapAndStillRuns) {
  auto token = std::make_shared<int>(0);
  SpillProbe probe{token, {}};

  Simulator s;
  {
    auto cb = [probe] { ++*probe.token; };
    static_assert(!InlineCallback::stores_inline<decltype(cb)>(),
                  "a >64-byte capture must take the heap fallback");
    s.schedule_at(1.0, std::move(cb));
  }  // the moved-from local holds no reference
  EXPECT_EQ(token.use_count(), 3);  // token, probe, + the scheduled copy
  s.run();
  EXPECT_EQ(*token, 1);
  EXPECT_EQ(token.use_count(), 2);  // the spilled callable was destroyed
}

TEST(SimulatorProperty, OversizedCaptureIsDestroyedOnCancel) {
  auto token = std::make_shared<int>(0);
  SpillProbe probe{token, {}};
  Simulator s;
  const EventId id = s.schedule_at(1.0, [probe] { ++*probe.token; });
  EXPECT_EQ(token.use_count(), 3);
  s.cancel(id);
  EXPECT_EQ(token.use_count(), 2);  // cancel destroys the spilled callable
  s.run();
  EXPECT_EQ(*token, 0);
}

TEST(SimulatorProperty, MoveOnlyCaptureWorksInlineAndSpilled) {
  Simulator s;
  int out = 0;

  // A unique_ptr capture is move-only and fits inline (16 bytes)...
  s.schedule_at(1.0, [p = std::make_unique<int>(7), &out] { out += *p; });

  // ...and a 128-byte move-only capture takes the heap fallback.
  struct Big {
    std::unique_ptr<int> p;
    char pad[120];
  };
  s.schedule_at(2.0, [b = Big{std::make_unique<int>(35), {}}, &out] {
    out += *b.p;
  });
  s.run();
  EXPECT_EQ(out, 42);
}

TEST(SimulatorProperty, ClearDropsPendingButKeepsOldIdsDead) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  s.clear();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.step());
  // Re-arm the (recycled) slots; the pre-clear id must stay dead.
  s.schedule_at(3.0, [&] { fired += 10; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 10);
}

}  // namespace
}  // namespace mclat::sim
