#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace mclat::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3.0);
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  double fired_at = -1.0;
  s.schedule_at(2.0, [&] {
    s.schedule_in(0.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator s;
  s.schedule_at(5.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(4.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule_at(1.0, [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterRun) {
  Simulator s;
  const EventId id = s.schedule_at(1.0, [] {});
  s.run();
  s.cancel(id);  // already executed: no-op
  s.cancel(id);  // repeated: no-op
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator s;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    s.schedule_in(1.0, tick);
  };
  s.schedule_in(1.0, tick);
  s.run_until(5.5);
  EXPECT_EQ(count, 5);  // t = 1..5
  EXPECT_DOUBLE_EQ(s.now(), 5.5);
  s.run_until(7.0);
  EXPECT_EQ(count, 7);  // continues from where it stopped
}

TEST(Simulator, RunUntilExecutesEventsAtExactHorizon) {
  Simulator s;
  bool ran = false;
  s.schedule_at(2.0, [&] { ran = true; });
  s.run_until(2.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, EventsScheduledDuringExecutionRun) {
  Simulator s;
  int depth = 0;
  std::function<void(int)> nest = [&](int d) {
    depth = d;
    if (d < 5) s.schedule_in(0.1, [&, d] { nest(d + 1); });
  };
  s.schedule_at(0.0, [&] { nest(1); });
  s.run();
  EXPECT_EQ(depth, 5);
}

TEST(Simulator, ClearDropsPendingEvents) {
  Simulator s;
  bool ran = false;
  s.schedule_at(1.0, [&] { ran = true; });
  s.clear();
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator s;
  int count = 0;
  s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator s;
  const EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

}  // namespace
}  // namespace mclat::sim
