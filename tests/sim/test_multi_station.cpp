// MultiServerStation unit behaviour (closed-form M/M/c checks live in
// tests/integration/test_mmc_theory_vs_sim.cpp).
#include "sim/multi_station.h"

#include <memory>
#include <vector>

#include "dist/deterministic.h"
#include <gtest/gtest.h>

namespace mclat::sim {
namespace {

TEST(MultiServerStation, ServesInParallelUpToC) {
  Simulator s;
  std::vector<Departure> done;
  MultiServerStation st(s, 3, std::make_unique<dist::Deterministic>(1.0),
                        dist::Rng(1),
                        [&](const Departure& d) { done.push_back(d); });
  s.schedule_at(0.0, [&] {
    for (int i = 0; i < 3; ++i) st.arrive(i);
  });
  s.run();
  ASSERT_EQ(done.size(), 3u);
  for (const Departure& d : done) {
    EXPECT_DOUBLE_EQ(d.waiting_time(), 0.0);  // all three start at once
    EXPECT_DOUBLE_EQ(d.departure, 1.0);
  }
}

TEST(MultiServerStation, FourthJobWaitsForAFreeServer) {
  Simulator s;
  std::vector<Departure> done;
  MultiServerStation st(s, 3, std::make_unique<dist::Deterministic>(1.0),
                        dist::Rng(1),
                        [&](const Departure& d) { done.push_back(d); });
  s.schedule_at(0.0, [&] {
    for (int i = 0; i < 4; ++i) st.arrive(i);
  });
  s.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_DOUBLE_EQ(done[3].waiting_time(), 1.0);
  EXPECT_DOUBLE_EQ(done[3].departure, 2.0);
  EXPECT_EQ(done[3].job_id, 3u);  // FIFO
}

TEST(MultiServerStation, BusyCountAndQueueLength) {
  Simulator s;
  MultiServerStation st(s, 2, std::make_unique<dist::Deterministic>(2.0),
                        dist::Rng(1), [](const Departure&) {});
  s.schedule_at(0.0, [&] {
    for (int i = 0; i < 5; ++i) st.arrive(i);
  });
  s.schedule_at(1.0, [&] {
    EXPECT_EQ(st.busy_servers(), 2u);
    EXPECT_EQ(st.queue_length(), 3u);
  });
  s.schedule_at(3.0, [&] {
    EXPECT_EQ(st.busy_servers(), 2u);
    EXPECT_EQ(st.queue_length(), 1u);
  });
  s.run();
  EXPECT_EQ(st.completed(), 5u);
  EXPECT_EQ(st.busy_servers(), 0u);
}

TEST(MultiServerStation, UtilizationIsPerServerFraction) {
  // One job of length 1 on a 4-server station over [0, 2]: busy-server
  // integral is 1, so utilisation = 1/(2·4).
  Simulator s;
  MultiServerStation st(s, 4, std::make_unique<dist::Deterministic>(1.0),
                        dist::Rng(1), [](const Departure&) {});
  s.schedule_at(0.0, [&] { st.arrive(0); });
  s.run();
  EXPECT_NEAR(st.utilization(2.0), 1.0 / 8.0, 1e-12);
}

TEST(MultiServerStation, WaitedFractionCountsOnlyDelayedJobs) {
  Simulator s;
  MultiServerStation st(s, 2, std::make_unique<dist::Deterministic>(1.0),
                        dist::Rng(1), [](const Departure&) {});
  s.schedule_at(0.0, [&] {
    st.arrive(0);
    st.arrive(1);
    st.arrive(2);  // the only one that waits
  });
  s.run();
  EXPECT_NEAR(st.waited_fraction(), 1.0 / 3.0, 1e-12);
}

TEST(MultiServerStation, SingleServerDegeneratesToServiceStation) {
  Simulator s;
  std::vector<Departure> done;
  MultiServerStation st(s, 1, std::make_unique<dist::Deterministic>(1.0),
                        dist::Rng(1),
                        [&](const Departure& d) { done.push_back(d); });
  s.schedule_at(0.0, [&] {
    st.arrive(0);
    st.arrive(1);
  });
  s.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[1].waiting_time(), 1.0);
}

TEST(MultiServerStation, ValidatesConstruction) {
  Simulator s;
  EXPECT_THROW(MultiServerStation(s, 0,
                                  std::make_unique<dist::Deterministic>(1.0),
                                  dist::Rng(1), [](const Departure&) {}),
               std::invalid_argument);
  EXPECT_THROW(MultiServerStation(s, 2, nullptr, dist::Rng(1),
                                  [](const Departure&) {}),
               std::invalid_argument);
  EXPECT_THROW(MultiServerStation(s, 2,
                                  std::make_unique<dist::Deterministic>(1.0),
                                  dist::Rng(1), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::sim
