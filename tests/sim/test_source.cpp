#include "sim/source.h"

#include <vector>

#include "dist/deterministic.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include <gtest/gtest.h>

namespace mclat::sim {
namespace {

TEST(BatchSource, DeterministicGapsTickLikeClockwork) {
  Simulator s;
  std::vector<double> times;
  BatchSource src(s, std::make_unique<dist::Deterministic>(1.0),
                  dist::GeometricBatch(0.0), dist::Rng(1),
                  [&](std::uint64_t n) {
                    EXPECT_EQ(n, 1u);
                    times.push_back(s.now());
                  });
  src.start();
  s.run_until(5.5);
  src.stop();
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(times[i], static_cast<double>(i + 1));
  }
}

TEST(BatchSource, KeyRateMatchesSpec) {
  // q = 0.3, batch rate chosen so the key rate is 10'000/s.
  Simulator s;
  const double q = 0.3;
  const double key_rate = 10'000.0;
  const double batch_rate = (1.0 - q) * key_rate;
  std::uint64_t keys = 0;
  BatchSource src(s,
                  std::make_unique<dist::Exponential>(batch_rate),
                  dist::GeometricBatch(q), dist::Rng(7),
                  [&](std::uint64_t n) { keys += n; });
  src.start();
  s.run_until(50.0);
  src.stop();
  EXPECT_NEAR(static_cast<double>(keys) / 50.0, key_rate, 0.02 * key_rate);
  EXPECT_EQ(keys, src.keys_emitted());
}

TEST(BatchSource, GeneralizedParetoGapsHitTargetRate) {
  Simulator s;
  const auto gap = dist::GeneralizedPareto::with_mean(0.15, 1e-3);
  std::uint64_t batches = 0;
  BatchSource src(s, gap.clone(), dist::GeometricBatch(0.0), dist::Rng(9),
                  [&](std::uint64_t) { ++batches; });
  src.start();
  s.run_until(100.0);
  src.stop();
  EXPECT_NEAR(static_cast<double>(batches) / 100.0, 1000.0, 30.0);
}

TEST(BatchSource, StopPreventsFurtherBatches) {
  Simulator s;
  std::uint64_t batches = 0;
  BatchSource src(s, std::make_unique<dist::Deterministic>(1.0),
                  dist::GeometricBatch(0.0), dist::Rng(1),
                  [&](std::uint64_t) { ++batches; });
  src.start();
  s.run_until(3.5);
  src.stop();
  s.run();  // drain whatever remains
  EXPECT_EQ(batches, 3u);
}

TEST(BatchSource, StartIsIdempotent) {
  Simulator s;
  std::uint64_t batches = 0;
  BatchSource src(s, std::make_unique<dist::Deterministic>(1.0),
                  dist::GeometricBatch(0.0), dist::Rng(1),
                  [&](std::uint64_t) { ++batches; });
  src.start();
  src.start();  // must not double-schedule
  s.run_until(2.5);
  src.stop();
  EXPECT_EQ(batches, 2u);
}

TEST(BatchSource, BatchSizesFollowGeometricLaw) {
  Simulator s;
  std::vector<std::uint64_t> sizes;
  BatchSource src(s, std::make_unique<dist::Deterministic>(0.001),
                  dist::GeometricBatch(0.4), dist::Rng(11),
                  [&](std::uint64_t n) { sizes.push_back(n); });
  src.start();
  s.run_until(200.0);
  src.stop();
  double mean = 0.0;
  for (const auto n : sizes) mean += static_cast<double>(n);
  mean /= static_cast<double>(sizes.size());
  EXPECT_NEAR(mean, 1.0 / 0.6, 0.03);
}

TEST(BatchSource, RejectsNullArguments) {
  Simulator s;
  EXPECT_THROW(BatchSource(s, nullptr, dist::GeometricBatch(0.0), dist::Rng(1),
                           [](std::uint64_t) {}),
               std::invalid_argument);
  EXPECT_THROW(BatchSource(s, std::make_unique<dist::Deterministic>(1.0),
                           dist::GeometricBatch(0.0), dist::Rng(1), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace mclat::sim
