// mini_json.h — a ~150-line recursive-descent JSON reader for tests only.
//
// The production code never parses JSON (it only emits it via
// obs::JsonWriter); the tests, however, must check the emitted documents
// structurally — schema_version present, fields numerically equal across
// schema migrations — without freezing byte positions. This parser covers
// exactly the subset JsonWriter can produce: objects, arrays, strings with
// the standard escapes, finite fixed-point numbers, true/false/null.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace mclat::testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) != 0;
  }
  /// Object member access; throws when missing (tests want loud failures).
  [[nodiscard]] const Value& at(const std::string& key) const {
    if (kind != Kind::kObject) throw std::runtime_error("not an object");
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return *it->second;
  }
  [[nodiscard]] const Value& at(std::size_t i) const {
    if (kind != Kind::kArray) throw std::runtime_error("not an array");
    return *array.at(i);
  }
  [[nodiscard]] double num() const {
    if (kind != Kind::kNumber) throw std::runtime_error("not a number");
    return number;
  }
  [[nodiscard]] const std::string& str() const {
    if (kind != Kind::kString) throw std::runtime_error("not a string");
    return string;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  ValuePtr parse() {
    ValuePtr v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing bytes");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' got '" +
                               s_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  ValuePtr value() {
    const char c = peek();
    auto v = std::make_shared<Value>();
    if (c == '{') {
      v->kind = Value::Kind::kObject;
      expect('{');
      if (!consume('}')) {
        do {
          const std::string key = string_literal();
          expect(':');
          v->object.emplace(key, value());
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      v->kind = Value::Kind::kArray;
      expect('[');
      if (!consume(']')) {
        do {
          v->array.push_back(value());
        } while (consume(','));
        expect(']');
      }
    } else if (c == '"') {
      v->kind = Value::Kind::kString;
      v->string = string_literal();
    } else if (literal("true")) {
      v->kind = Value::Kind::kBool;
      v->boolean = true;
    } else if (literal("false")) {
      v->kind = Value::Kind::kBool;
      v->boolean = false;
    } else if (literal("null")) {
      v->kind = Value::Kind::kNull;
    } else {
      v->kind = Value::Kind::kNumber;
      v->number = number_literal();
    }
    return v;
  }

  bool literal(std::string_view word) {
    skip_ws();
    if (s_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  double number_literal() {
    skip_ws();
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) != 0 ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) throw std::runtime_error("expected number");
    const std::string tok(s_.substr(pos_, end - pos_));
    pos_ = end;
    return std::strtod(tok.c_str(), nullptr);
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u");
          const std::string hex(s_.substr(pos_, 4));
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // JsonWriter only emits \u for control characters (< 0x20).
          out += static_cast<char>(code);
          break;
        }
        default: throw std::runtime_error("unknown escape");
      }
    }
    return out;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

inline ValuePtr parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace mclat::testjson
