// bench_sweep.h — the shared engine of the Fig. 5/6/7/10/12 sweeps: for one
// SystemConfig, run the Mode-A testbed, assemble requests and report the
// server-stage E[T_S(N)] (theory bounds + measured CI).
//
// Replications are fanned across an exec::TrialRunner: each replication is
// an independent (simulate → assemble) trial seeded from the deterministic
// per-trial seed stream, and per-trial Welford accumulators are merged in
// trial order — so a sweep point's statistics are bit-identical for any
// worker count (MCLAT_BENCH_JOBS) and replication count (MCLAT_BENCH_REPS).
#pragma once

#include "bench_util.h"
#include "cluster/workload_driven.h"
#include "core/theorem1.h"
#include "exec/trial_runner.h"
#include "stats/welford.h"

namespace mclat::bench {

struct ServerStagePoint {
  core::Bounds theory;       ///< eq. (14) bounds on E[T_S(N)]
  stats::MeanCI measured;    ///< assembled-request mean with CI
  double utilization = 0.0;  ///< measured at the heaviest server
  bool stable = true;
};

/// Replication fan-out for a sweep point; defaults reproduce the classic
/// serial single-replication run. See sweep_options_from_env().
struct SweepOptions {
  std::uint64_t replications = 1;
  std::size_t jobs = 1;
};

/// Reads MCLAT_BENCH_REPS / MCLAT_BENCH_JOBS (both default 1, floors 1) so
/// every fig bench can be replicated/parallelized without new flags.
inline SweepOptions sweep_options_from_env() {
  SweepOptions opt;
  if (const char* reps = std::getenv("MCLAT_BENCH_REPS")) {
    const long long r = std::atoll(reps);
    if (r > 1) opt.replications = static_cast<std::uint64_t>(r);
  }
  if (const char* jobs = std::getenv("MCLAT_BENCH_JOBS")) {
    const long long j = std::atoll(jobs);
    if (j > 1) opt.jobs = static_cast<std::size_t>(j);
  }
  return opt;
}

/// Runs one sweep point: `opt.replications` independent trials merged in
/// trial order. `sim_seconds` is pre-scaling; requests defaults to enough
/// for tight CIs at N=150.
inline ServerStagePoint run_server_point(const core::SystemConfig& sys,
                                         std::uint64_t seed,
                                         double sim_seconds = 12.0,
                                         std::uint64_t requests = 20'000,
                                         const SweepOptions& opt = {}) {
  ServerStagePoint pt;
  const core::LatencyModel model(sys);
  pt.stable = model.stable();
  if (pt.stable) {
    pt.theory = model.server_mean_bounds(sys.keys_per_request);
  }

  struct Trial {
    stats::Welford server;
    double utilization = 0.0;
  };

  const auto shares = sys.shares();
  std::size_t heavy = 0;
  for (std::size_t j = 1; j < shares.size(); ++j) {
    if (shares[j] > shares[heavy]) heavy = j;
  }

  const exec::TrialRunner runner({opt.jobs, seed});
  const std::vector<Trial> trials = runner.run(
      opt.replications, [&](std::uint64_t, std::uint64_t trial_seed) {
        cluster::WorkloadDrivenConfig cfg;
        cfg.system = sys;
        cfg.warmup_time = 1.5 * time_scale();
        cfg.measure_time = sim_seconds * time_scale();
        cfg.seed = exec::stream_seed(trial_seed, exec::Stream::simulation);
        const cluster::MeasurementPools pools =
            cluster::WorkloadDrivenSim(cfg).run();
        dist::Rng rng(exec::stream_seed(trial_seed, exec::Stream::assembly));
        const cluster::AssembledRequests reqs = cluster::assemble_requests(
            pools, sys, requests, sys.keys_per_request, rng);
        Trial t;
        for (const double s : reqs.server) t.server.add(s);
        t.utilization = pools.server_utilization[heavy];
        return t;
      });

  std::vector<stats::Welford> parts;
  parts.reserve(trials.size());
  double util = 0.0;
  for (const Trial& t : trials) {
    parts.push_back(t.server);
    util += t.utilization;
  }
  pt.measured = stats::pooled_mean_ci(parts);
  pt.utilization = util / static_cast<double>(trials.size());
  return pt;
}

/// Prints the standard sweep row.
inline void print_server_row(double x, const char* x_fmt,
                             const ServerStagePoint& pt) {
  std::printf(x_fmt, x);
  if (pt.stable) {
    std::printf(" | %18s | %-26s | %5.1f%% | %s\n",
                us_bounds(pt.theory).c_str(), us_ci(pt.measured).c_str(),
                100.0 * pt.utilization,
                verdict(pt.measured.mean, pt.theory, 1.35));
  } else {
    std::printf(" | %18s | %-26s | %5.1f%% | unstable\n", "(unstable)",
                us_ci(pt.measured).c_str(), 100.0 * pt.utilization);
  }
}

inline void print_server_header(const char* x_name) {
  std::printf("\n%8s | %-18s | %-26s | %6s | %s\n", x_name,
              "eq.(14) lo~hi (us)", "experiment (us)", "rho", "band");
  std::printf("---------+--------------------+----------------------------+--------+------\n");
}

}  // namespace mclat::bench
