// bench_sweep.h — the shared engine of the Fig. 5/6/7/10/12 sweeps: for one
// SystemConfig, run the Mode-A testbed, assemble requests and report the
// server-stage E[T_S(N)] (theory bounds + measured CI).
#pragma once

#include "bench_util.h"
#include "cluster/workload_driven.h"
#include "core/theorem1.h"

namespace mclat::bench {

struct ServerStagePoint {
  core::Bounds theory;       ///< eq. (14) bounds on E[T_S(N)]
  stats::MeanCI measured;    ///< assembled-request mean with CI
  double utilization = 0.0;  ///< measured at the heaviest server
  bool stable = true;
};

/// Runs one sweep point. `sim_seconds` is pre-scaling; requests defaults to
/// enough for tight CIs at N=150.
inline ServerStagePoint run_server_point(const core::SystemConfig& sys,
                                         std::uint64_t seed,
                                         double sim_seconds = 12.0,
                                         std::uint64_t requests = 20'000) {
  ServerStagePoint pt;
  const core::LatencyModel model(sys);
  pt.stable = model.stable();
  if (pt.stable) {
    pt.theory = model.server_mean_bounds(sys.keys_per_request);
  }

  cluster::WorkloadDrivenConfig cfg;
  cfg.system = sys;
  cfg.warmup_time = 1.5 * time_scale();
  cfg.measure_time = sim_seconds * time_scale();
  cfg.seed = seed;
  const cluster::MeasurementPools pools =
      cluster::WorkloadDrivenSim(cfg).run();
  dist::Rng rng(seed ^ 0xfeedull);
  const cluster::AssembledRequests reqs = cluster::assemble_requests(
      pools, sys, requests, sys.keys_per_request, rng);
  pt.measured = reqs.server_ci();
  const auto shares = sys.shares();
  std::size_t heavy = 0;
  for (std::size_t j = 1; j < shares.size(); ++j) {
    if (shares[j] > shares[heavy]) heavy = j;
  }
  pt.utilization = pools.server_utilization[heavy];
  return pt;
}

/// Prints the standard sweep row.
inline void print_server_row(double x, const char* x_fmt,
                             const ServerStagePoint& pt) {
  std::printf(x_fmt, x);
  if (pt.stable) {
    std::printf(" | %18s | %-26s | %5.1f%% | %s\n",
                us_bounds(pt.theory).c_str(), us_ci(pt.measured).c_str(),
                100.0 * pt.utilization,
                verdict(pt.measured.mean, pt.theory, 1.35));
  } else {
    std::printf(" | %18s | %-26s | %5.1f%% | unstable\n", "(unstable)",
                us_ci(pt.measured).c_str(), 100.0 * pt.utilization);
  }
}

inline void print_server_header(const char* x_name) {
  std::printf("\n%8s | %-18s | %-26s | %6s | %s\n", x_name,
              "eq.(14) lo~hi (us)", "experiment (us)", "rho", "band");
  std::printf("---------+--------------------+----------------------------+--------+------\n");
}

}  // namespace mclat::bench
