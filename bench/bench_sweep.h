// bench_sweep.h — the shared engine of the Fig. 5/6/7/10/12 sweeps: for one
// SystemConfig, run the Mode-A testbed, assemble requests and report the
// server-stage E[T_S(N)] (theory bounds + measured CI).
//
// Replications are fanned across an exec::TrialRunner: each replication is
// an independent (simulate → assemble) trial seeded from the deterministic
// per-trial seed stream, and per-trial Welford accumulators are merged in
// trial order — so a sweep point's statistics are bit-identical for any
// worker count (MCLAT_BENCH_JOBS) and replication count (MCLAT_BENCH_REPS).
#pragma once

#include <cmath>
#include <string_view>

#include "bench_util.h"
#include "cluster/workload_driven.h"
#include "core/theorem1.h"
#include "exec/trial_runner.h"
#include "obs/json_writer.h"
#include "stats/welford.h"

namespace mclat::bench {

struct ServerStagePoint {
  core::Bounds theory;       ///< eq. (14) bounds on E[T_S(N)]
  stats::MeanCI measured;    ///< assembled-request mean with CI
  double utilization = 0.0;  ///< measured at the heaviest server
  bool stable = true;
};

/// Replication fan-out for a sweep point; defaults reproduce the classic
/// serial single-replication run. See sweep_options_from_env().
struct SweepOptions {
  std::uint64_t replications = 1;
  std::size_t jobs = 1;
};

/// Reads MCLAT_BENCH_REPS / MCLAT_BENCH_JOBS (both default 1, floors 1) so
/// every fig bench can be replicated/parallelized without new flags.
inline SweepOptions sweep_options_from_env() {
  SweepOptions opt;
  if (const char* reps = std::getenv("MCLAT_BENCH_REPS")) {
    const long long r = std::atoll(reps);
    if (r > 1) opt.replications = static_cast<std::uint64_t>(r);
  }
  if (const char* jobs = std::getenv("MCLAT_BENCH_JOBS")) {
    const long long j = std::atoll(jobs);
    if (j > 1) opt.jobs = static_cast<std::size_t>(j);
  }
  return opt;
}

/// Runs one sweep point: `opt.replications` independent trials merged in
/// trial order. `sim_seconds` is pre-scaling; requests defaults to enough
/// for tight CIs at N=150.
inline ServerStagePoint run_server_point(const core::SystemConfig& sys,
                                         std::uint64_t seed,
                                         double sim_seconds = 12.0,
                                         std::uint64_t requests = 20'000,
                                         const SweepOptions& opt = {}) {
  ServerStagePoint pt;
  const core::LatencyModel model(sys);
  pt.stable = model.stable();
  if (pt.stable) {
    pt.theory = model.server_mean_bounds(sys.keys_per_request);
  }

  struct Trial {
    stats::Welford server;
    double utilization = 0.0;
  };

  const auto shares = sys.shares();
  std::size_t heavy = 0;
  for (std::size_t j = 1; j < shares.size(); ++j) {
    if (shares[j] > shares[heavy]) heavy = j;
  }

  const exec::TrialRunner runner({opt.jobs, seed});
  const std::vector<Trial> trials = runner.run(
      opt.replications, [&](std::uint64_t, std::uint64_t trial_seed) {
        cluster::WorkloadDrivenConfig cfg;
        cfg.system = sys;
        cfg.common.warmup_time = 1.5 * time_scale();
        cfg.common.measure_time = sim_seconds * time_scale();
        cfg.common.seed = exec::stream_seed(trial_seed, exec::Stream::simulation);
        const cluster::MeasurementPools pools =
            cluster::WorkloadDrivenSim(cfg).run();
        dist::Rng rng(exec::stream_seed(trial_seed, exec::Stream::assembly));
        const cluster::AssembledRequests reqs = cluster::assemble_requests(
            pools, sys, requests, sys.keys_per_request, rng);
        Trial t;
        for (const double s : reqs.server) t.server.add(s);
        t.utilization = pools.server_utilization[heavy];
        return t;
      });

  std::vector<stats::Welford> parts;
  parts.reserve(trials.size());
  double util = 0.0;
  for (const Trial& t : trials) {
    parts.push_back(t.server);
    util += t.utilization;
  }
  pt.measured = stats::pooled_mean_ci(parts);
  pt.utilization = util / static_cast<double>(trials.size());
  return pt;
}

/// Output format for the sweep rows, from MCLAT_BENCH_FORMAT:
///   table (default)  the human-readable columns below;
///   json             one schema-v2 JSON document per row (NDJSON);
///   csv              an RFC-4180 header + one row per point.
/// json/csv rows carry identical numbers to the table — machine-readable
/// sweeps need no second run.
enum class SweepFormat { kTable, kJson, kCsv };

inline SweepFormat sweep_format() {
  const char* f = std::getenv("MCLAT_BENCH_FORMAT");
  if (f == nullptr) return SweepFormat::kTable;
  if (std::string_view(f) == "json") return SweepFormat::kJson;
  if (std::string_view(f) == "csv") return SweepFormat::kCsv;
  return SweepFormat::kTable;
}

/// The sweep variable's name, set by print_server_header for the
/// machine-readable rows (bench mains are single-threaded).
inline const char*& sweep_x_name() {
  static const char* name = "x";
  return name;
}

inline void print_server_header(const char* x_name) {
  sweep_x_name() = x_name;
  switch (sweep_format()) {
    case SweepFormat::kJson:
      return;  // NDJSON rows are self-describing
    case SweepFormat::kCsv: {
      obs::CsvWriter w;
      w.cell("x_name").cell("x").cell("theory_lower_us")
          .cell("theory_upper_us").cell("measured_mean_us")
          .cell("measured_half_us").cell("count").cell("utilization")
          .cell("stable").end_row();
      std::printf("%s", w.str().c_str());
      return;
    }
    case SweepFormat::kTable:
      break;
  }
  std::printf("\n%8s | %-18s | %-26s | %6s | %s\n", x_name,
              "eq.(14) lo~hi (us)", "experiment (us)", "rho", "band");
  std::printf("---------+--------------------+----------------------------+--------+------\n");
}

/// Prints the standard sweep row in the selected format.
inline void print_server_row(double x, const char* x_fmt,
                             const ServerStagePoint& pt) {
  switch (sweep_format()) {
    case SweepFormat::kJson: {
      obs::JsonWriter w;
      w.begin_document()
          .field("x_name", sweep_x_name())
          .field("x", x, 6)
          .field("stable", pt.stable);
      if (pt.stable) {
        w.begin_object("theory_us")
            .field("lower", pt.theory.lower * 1e6, 3)
            .field("upper", pt.theory.upper * 1e6, 3)
            .end_object();
      } else {
        w.null_field("theory_us");
      }
      w.begin_object("measured_us")
          .field("mean", pt.measured.mean * 1e6, 3)
          .field("half", pt.measured.halfwidth * 1e6, 3)
          .field("count", static_cast<std::uint64_t>(pt.measured.count))
          .end_object()
          .field("utilization", pt.utilization, 6)
          .end_object();
      std::printf("%s\n", w.str().c_str());
      return;
    }
    case SweepFormat::kCsv: {
      const double nan = std::nan("");
      obs::CsvWriter w;
      w.cell(sweep_x_name())
          .cell(x, 6)
          .cell(pt.stable ? pt.theory.lower * 1e6 : nan, 3)
          .cell(pt.stable ? pt.theory.upper * 1e6 : nan, 3)
          .cell(pt.measured.mean * 1e6, 3)
          .cell(pt.measured.halfwidth * 1e6, 3)
          .cell(static_cast<std::uint64_t>(pt.measured.count))
          .cell(pt.utilization, 6)
          .cell(pt.stable ? "1" : "0")
          .end_row();
      std::printf("%s", w.str().c_str());
      return;
    }
    case SweepFormat::kTable:
      break;
  }
  std::printf(x_fmt, x);
  if (pt.stable) {
    std::printf(" | %18s | %-26s | %5.1f%% | %s\n",
                us_bounds(pt.theory).c_str(), us_ci(pt.measured).c_str(),
                100.0 * pt.utilization,
                verdict(pt.measured.mean, pt.theory, 1.35));
  } else {
    std::printf(" | %18s | %-26s | %5.1f%% | unstable\n", "(unstable)",
                us_ci(pt.measured).c_str(), 100.0 * pt.utilization);
  }
}

}  // namespace mclat::bench
