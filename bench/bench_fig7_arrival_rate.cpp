// bench_fig7_arrival_rate — reproduces Fig. 7: E[T_S(N)] vs the per-server
// key arrival rate λ ∈ [10, 75] Kps at μ_S = 80 Kps. The paper finds a
// latency cliff near λ ≈ 60 Kps, i.e. ρ_S ≈ 75 %.
#include "bench_sweep.h"

int main() {
  using namespace mclat;

  bench::banner("Figure 7", "ICDCS'17 Fig. 7 (arrival rate)",
                "lambda in [10, 75] Kps/server; xi=0.15, q=0.1, muS=80Kps");
  const bench::SweepOptions opt = bench::sweep_options_from_env();
  bench::print_server_header("l(Kps)");
  std::uint64_t seed = 70;
  for (double l = 10'000.0; l <= 75'000.1; l += 5'000.0) {
    core::SystemConfig sys = core::SystemConfig::facebook();
    sys.total_key_rate = 4.0 * l;
    const auto pt = bench::run_server_point(sys, seed++, 14.0, 20'000, opt);
    bench::print_server_row(l / 1000.0, "%8.0f", pt);
  }
  std::printf("\nShape check: gentle growth below ~50 Kps, sharp rise past "
              "~60 Kps (the rho = 75%% cliff of Table 4 at xi = 0.15).\n");
  return 0;
}
