// bench_fig10_load_imbalance — reproduces Fig. 10: E[T_S(N)] vs the largest
// load ratio p1 ∈ [0.3, 0.9] with aggregate rate Λ = 80 Kps over 4 servers
// (ξ = 0.15, μ_S = 80 Kps). The paper: a cliff when p1·Λ/μ_S crosses 75 %,
// i.e. p1 ≈ 0.75.
#include "bench_sweep.h"
#include "dist/discrete.h"

int main() {
  using namespace mclat;

  bench::banner("Figure 10", "ICDCS'17 Fig. 10 (load imbalance)",
                "p1 in [0.3, 0.9]; Lambda=80Kps aggregate, 4 servers, "
                "muS=80Kps, xi=0.15, q=0.1, N=150");
  const bench::SweepOptions opt = bench::sweep_options_from_env();
  bench::print_server_header("p1");
  std::uint64_t seed = 100;
  for (double p1 = 0.30; p1 <= 0.901; p1 += 0.05) {
    core::SystemConfig sys = core::SystemConfig::facebook();
    sys.total_key_rate = 80'000.0;
    sys.load_shares = dist::skewed_load(4, p1);
    // Past the cliff the heavy server needs long runs to reach steady state.
    const auto pt = bench::run_server_point(sys, seed++, 20.0, 20'000, opt);
    bench::print_server_row(p1, "%8.2f", pt);
  }
  std::printf("\nShape check: flat while p1*Lambda < 60 Kps, cliff at "
              "p1 ~ 0.75 where the heaviest server crosses 75%% "
              "utilisation — the Fig. 10 story and the load-balancing "
              "guideline of 5.2.2.\n");
  return 0;
}
