// bench_ablation_arrival_patterns — ablation A3: how much of the latency
// story is specific to the Generalized-Pareto arrival model? We compare GP
// against Erlang (smoother), Exponential (Poisson) and HyperExponential
// (bursty, light-tailed) at the *same* key rate and utilisation, reporting
// E[T_S(N)] and the cliff utilisation each pattern implies.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cliff.h"
#include "core/theorem1.h"

int main() {
  using namespace mclat;

  bench::banner("Ablation A3", "arrival-pattern sensitivity",
                "equal rate/utilisation, different gap families");

  struct PatternCase {
    const char* label;
    workload::GapPattern pattern;
    double knob;  // xi for GP, SCV otherwise
  };
  const std::vector<PatternCase> cases = {
      {"Erlang-4 (SCV 0.25)", workload::GapPattern::kErlang, 0.25},
      {"Poisson   (SCV 1.0)", workload::GapPattern::kExponential, 1.0},
      {"GP xi=0.15", workload::GapPattern::kGeneralizedPareto, 0.15},
      {"H2 SCV=2.6 (~xi .15)", workload::GapPattern::kHyperExponential, 2.6},
      {"GP xi=0.40", workload::GapPattern::kGeneralizedPareto, 0.40},
      {"H2 SCV=9.0", workload::GapPattern::kHyperExponential, 9.0},
  };

  std::printf("\n%-22s | %8s | %-18s | %10s\n", "pattern", "delta",
              "E[T_S(150)] (us)", "cliff rho*");
  std::printf("-----------------------+----------+--------------------+-----------\n");
  for (const auto& c : cases) {
    core::SystemConfig sys = core::SystemConfig::facebook();
    sys.pattern = c.pattern;
    if (c.pattern == workload::GapPattern::kGeneralizedPareto) {
      sys.burst_xi = c.knob;
    } else {
      sys.pattern_scv = c.knob;
    }
    const core::LatencyModel m(sys);
    const auto& s1 = m.server_stage().server(0);
    core::CliffAnalyzer::Options copt;
    copt.pattern = c.pattern;
    copt.concurrency_q = sys.concurrency_q;
    const core::CliffAnalyzer cliff(copt);
    const double knob_for_cliff =
        c.pattern == workload::GapPattern::kGeneralizedPareto ? c.knob
                                                              : c.knob;
    std::printf("%-22s | %8.4f | %18s | %9.1f%%\n", c.label, s1.delta(),
                bench::us_bounds(m.server_mean_bounds(150)).c_str(),
                100.0 * cliff.cliff_utilization(knob_for_cliff));
  }
  std::printf("\nReading: at equal utilisation, latency and cliff position "
              "are driven by the gap distribution's variability, not its "
              "family — an H2 matched to GP-like SCV lands close to the GP "
              "row, and smoother-than-Poisson arrivals push the cliff "
              "beyond 77%%. The paper's GP choice matters through its "
              "burstiness, which is the quantity Table 4 indexes.\n");
  return 0;
}
