// bench_ext_shard_scaling — intra-trial parallel execution: wall-clock
// scaling of the sharded-calendar engine (DESIGN.md §4i) over
// shard_jobs x server count, on one large end-to-end trial per cell.
//
// Two things are measured at once:
//
//   * throughput: events/s of the whole trial (arrivals, departures, DB
//     fetches, joins) and the speedup over the shard_jobs=1 serial loop on
//     the *same* system — the number scripts/bench_shard.sh records in
//     BENCH_shard.json;
//   * determinism: every cell in a server row must report bit-identical
//     E[T(N)] regardless of K (the engine's K-invariance contract) — the
//     harness aborts with a nonzero exit if any cell drifts.
//
// Speedup is honest only when the machine has the cores to back it: each
// sharded run occupies K+1 threads (K server shards + the coordinator), so
// on a 1-core container every K>1 cell time-slices and the "speedup"
// column reads ~1x or below. The MACHINE line reports hardware_concurrency
// so bench_shard.sh can gate the ≥3x-at-8-shards claim on cores >= 8
// instead of publishing a number the hardware cannot have produced.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/end_to_end.h"

namespace {

using namespace mclat;

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

struct Cell {
  double wall_s = 0.0;
  double mean = 0.0;  ///< E[T(N)] — the determinism witness
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
};

Cell run_cell(std::size_t servers, std::size_t shard_jobs) {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.servers = static_cast<std::uint32_t>(servers);
  cfg.system.total_key_rate = static_cast<double>(servers) * 20'000.0;
  cfg.system.keys_per_request = 10;
  // A fat network delay = fat lookahead windows: the conservative engine's
  // best case, and still the paper's order of magnitude for a datacenter
  // round trip.
  cfg.system.network_latency = 1e-3;
  cfg.common.warmup_time = 0.1 * bench::time_scale();
  cfg.common.measure_time = 1.0 * bench::time_scale();
  cfg.common.seed = 404;
  cfg.common.shard_jobs = shard_jobs;

  const auto t0 = std::chrono::steady_clock::now();
  const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), r.total.mean,
          r.events_executed, r.requests_completed};
}

}  // namespace

int main() {
  const unsigned cores = std::thread::hardware_concurrency();
  bench::banner("Extension: sharded-calendar scaling",
                "(perf harness; no paper figure)",
                "one end-to-end trial per cell, wall-clock vs shard_jobs; "
                "r=0, N=10, 20Kps/server, net=1ms lookahead");
  std::printf("MACHINE cores=%u\n", cores);

  bool deterministic = true;
  const std::vector<std::size_t> shard_axis = {1, 2, 4, 8};
  for (const std::size_t servers : {16, 64, 128}) {
    std::printf("\nservers: M = %zu (%.1fM keys offered in the measure "
                "window)\n",
                servers,
                static_cast<double>(servers) * 20'000.0 *
                    bench::time_scale() / 1e6);
    std::printf("%7s | %8s | %10s | %8s | %s\n", "shards", "wall(s)",
                "events/s", "speedup", "E[T] bits");
    std::printf("--------+----------+------------+----------+------------\n");
    // shard_jobs=1 is the exact serial loop; K>1 is its own deterministic
    // sampling contract, so the K>1 cells are compared to *each other*
    // (the K=1 row anchors the speedup column, not the bit pattern).
    Cell serial;
    double parallel_witness = 0.0;
    for (const std::size_t k : shard_axis) {
      const Cell c = run_cell(servers, k);
      const char* bits = "(serial anchor)";
      if (k == 1) {
        serial = c;
      } else if (parallel_witness == 0.0) {
        parallel_witness = c.mean;
        bits = "(K>1 witness)";
      } else if (same_bits(c.mean, parallel_witness)) {
        bits = "same";
      } else {
        bits = "DRIFT";
        deterministic = false;
      }
      std::printf("%7zu | %8.2f | %10.0f | %7.2fx | %s\n", k, c.wall_s,
                  static_cast<double>(c.events) / c.wall_s,
                  serial.wall_s / c.wall_s, bits);
      std::printf("ROW servers=%zu shards=%zu wall_s=%.6f events=%llu "
                  "requests=%llu mean_us=%.6f\n",
                  servers, k, c.wall_s,
                  static_cast<unsigned long long>(c.events),
                  static_cast<unsigned long long>(c.requests),
                  c.mean * 1e6);
    }
  }

  if (!deterministic) {
    std::printf("\nFAIL: K-invariance violated — sharded cells disagree "
                "bit-for-bit within a server row\n");
    return 1;
  }
  std::printf(
      "\nReading: shard_jobs=1 is the untouched serial loop; K>1 runs the "
      "same system on K server-calendar shards plus a coordinator under a "
      "conservative %s lookahead. Speedup needs K+1 real cores — on fewer, "
      "the rows time-slice and the column honestly reads ~1x.\n",
      "net/2");
  return 0;
}
