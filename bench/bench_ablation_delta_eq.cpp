// bench_ablation_delta_eq — ablation A1: which form of the root equation is
// right? The paper's Table 1 includes the batch-service correction,
// δ = L_TX((1-δ)(1-q)μ_S), while the body's eq. (6) prints δ = L_TX((1-δ)μ_S).
// We simulate the GI^X/M/1 queue and compare the waiting-time distribution
// implied by each root; only the corrected form should match.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/delta.h"
#include "core/gixm1.h"
#include "dist/empirical.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "sim/simulator.h"
#include "sim/source.h"
#include "sim/station.h"

namespace {

mclat::dist::Empirical simulate_waits(double xi, double q, double key_rate,
                                      double mu, double horizon) {
  using namespace mclat;
  sim::Simulator s;
  std::vector<double> waits;
  sim::ServiceStation st(s, std::make_unique<dist::Exponential>(mu),
                         dist::Rng(41), [&](const sim::Departure& d) {
                           if (d.arrival > 3.0) {
                             waits.push_back(d.waiting_time());
                           }
                         });
  const auto gap =
      dist::GeneralizedPareto::with_mean(xi, 1.0 / ((1.0 - q) * key_rate));
  std::uint64_t id = 0;
  sim::BatchSource src(s, gap.clone(), dist::GeometricBatch(q),
                       dist::Rng(43), [&](std::uint64_t n) {
                         for (std::uint64_t i = 0; i < n; ++i)
                           st.arrive(id++);
                       });
  src.start();
  s.run_until(horizon);
  return dist::Empirical(std::move(waits));
}

}  // namespace

int main() {
  using namespace mclat;

  bench::banner("Ablation A1", "root-equation form (Table 1 vs eq. 6)",
                "simulated batch waiting time vs delta-implied mean "
                "delta/eta; Facebook workload at several q");

  std::printf("\n%5s | %10s | %16s | %16s | %12s\n", "q", "delta(corr)",
              "corrected E[W]us", "uncorrected (us)", "simulated us");
  std::printf("------+------------+------------------+------------------+-------------\n");
  for (const double q : {0.0, 0.1, 0.3, 0.5}) {
    const double key_rate = 62'500.0;
    const double mu = 80'000.0;
    const auto gap = dist::GeneralizedPareto::with_mean(
        0.15, 1.0 / ((1.0 - q) * key_rate));
    core::DeltaOptions corr;
    core::DeltaOptions uncorr;
    uncorr.batch_corrected = false;
    const auto dc = core::solve_delta(gap, q, mu, corr);
    const auto du = core::solve_delta(gap, q, mu, uncorr);
    // Mean *key* waiting ≈ mean batch queueing delay δ/η (per eq. 4 the
    // batch waits Exp(η) with probability δ). The uncorrected variant
    // implies η' = (1-δ')μ_S without the (1-q) factor.
    const double w_corr = dc.delta / ((1.0 - dc.delta) * (1.0 - q) * mu);
    const double w_unc = du.delta / ((1.0 - du.delta) * mu);
    const auto sim =
        simulate_waits(0.15, q, key_rate, mu, 40.0 * bench::time_scale());
    std::printf("%5.1f | %10.4f | %16.1f | %16.1f | %12.1f\n", q, dc.delta,
                w_corr * 1e6, w_unc * 1e6, sim.mean() * 1e6);
  }
  std::printf("\nReading: at q=0 both forms coincide; as q grows the "
              "uncorrected eq.-6 form increasingly underestimates the "
              "simulated waiting time while the Table-1 form tracks it — "
              "confirming the (1-q) factor is the intended equation.\n");
  return 0;
}
