// legacy_workload.h — the pre-memoization workload hot path, kept verbatim
// as the baseline reference for the BENCH_workload.json baseline-vs-after
// snapshot (scripts/bench_workload.sh):
//
//   * CdfDiscrete — the classical one-uniform categorical sampler (linear
//     CDF + binary search), the layout dist::Discrete's alias table
//     replaces;
//   * run_end_to_end — the pre-KeyTable cluster::EndToEndSim::run(), which
//     re-rendered the key string, re-hashed it through the mapper, and
//     re-seeded a value-size RNG on every arrival / departure / refill.
//
// Both twins run in the same binary as their production counterparts and
// are measured interleaved; cross-binary readings on shared hardware swing
// 2x run to run, twin readings move together (see bench/legacy_sim.h).
//
// This is NOT production code. Do not grow features here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/lru_store.h"
#include "cluster/delay_station.h"
#include "cluster/end_to_end.h"
#include "cluster/job_table.h"
#include "dist/discrete.h"
#include "dist/exponential.h"
#include "dist/rng.h"
#include "hashing/consistent_hash.h"
#include "hashing/hashes.h"
#include "hashing/key_mapper.h"
#include "hashing/weighted_mapper.h"
#include "math/numerics.h"
#include "sim/multi_station.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "stats/welford.h"
#include "workload/keyspace.h"
#include "workload/size_model.h"

namespace mclat::bench::legacy_workload {

/// Classical categorical sampler: one uniform, inverted through a cumulative
/// table with std::upper_bound. Same cost model as the textbook "CDF search"
/// — O(log K) per draw plus the cache misses of walking the cumulative
/// array. The production dist::Discrete spends the same single uniform on an
/// O(1) alias-table lookup instead.
class CdfDiscrete {
 public:
  explicit CdfDiscrete(const std::vector<double>& weights) {
    math::require(!weights.empty(), "CdfDiscrete: empty weights");
    double total = 0.0;
    for (const double w : weights) {
      math::require(w >= 0.0, "CdfDiscrete: negative weight");
      total += w;
    }
    math::require(total > 0.0, "CdfDiscrete: zero total weight");
    cdf_.reserve(weights.size());
    double acc = 0.0;
    for (const double w : weights) {
      acc += w / total;
      cdf_.push_back(acc);
    }
    cdf_.back() = 1.0;  // pin against rounding so u < 1 always lands
  }

  [[nodiscard]] std::size_t sample(dist::Rng& rng) const {
    return sample_at(rng.uniform());
  }

  [[nodiscard]] std::size_t sample_at(double u) const {
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

namespace detail {

struct RequestState {
  double start = 0.0;
  std::uint32_t remaining = 0;
  double max_server = 0.0;
  double max_db = 0.0;
  double max_total = 0.0;
  double sum_total = 0.0;
  bool measured = false;
};

struct KeyContext {
  std::uint64_t request_id = 0;
  std::uint64_t key_rank = 0;
  std::size_t server = 0;
  double server_sojourn = 0.0;
  double db_sojourn = 0.0;
};

inline std::unique_ptr<hashing::KeyMapper> make_mapper(
    const cluster::EndToEndConfig& cfg) {
  const auto shares = cfg.system.shares();
  switch (cfg.mapper) {
    case cluster::MapperKind::kWeighted:
      return std::make_unique<hashing::WeightedMapper>(shares);
    case cluster::MapperKind::kRing:
      return std::make_unique<hashing::ConsistentHashRing>(shares.size());
    case cluster::MapperKind::kModulo:
      return std::make_unique<hashing::ModuloMapper>(shares.size());
  }
  throw std::logic_error("legacy make_mapper: unhandled mapper kind");
}

}  // namespace detail

/// The pre-KeyTable EndToEndSim::run(), verbatim: every key arrival renders
/// the key string and hashes it through the mapper; every real-cache server
/// departure re-renders and re-hashes it for the store probe; every refill
/// re-renders the key and constructs a fresh mt19937_64 for the value size.
/// Same kernel, stations, RNG stream and statistics as production — the only
/// difference is the per-arrival workload metadata path, which is what
/// BENCH_workload.json isolates.
inline cluster::EndToEndResult run_end_to_end(cluster::EndToEndConfig cfg_) {
  using namespace mclat::cluster;
  using detail::KeyContext;
  using detail::RequestState;

  math::require(cfg_.common.warmup_time >= 0.0 && cfg_.common.measure_time > 0.0,
                "legacy EndToEndSim: bad time horizon");
  math::require(cfg_.system.keys_per_request >= 1,
                "legacy EndToEndSim: keys_per_request must be >= 1");

  const core::SystemConfig& sys = cfg_.system;
  const std::vector<double> shares = sys.shares();
  const std::size_t M = shares.size();
  const double net_half = sys.network_latency / 2.0;
  const double horizon = cfg_.common.warmup_time + cfg_.common.measure_time;
  const bool real_cache = cfg_.miss_mode == MissMode::kRealCache;

  sim::Simulator s;
  dist::Rng master(cfg_.common.seed);
  dist::Rng req_rng = master.split();
  dist::Rng miss_rng = master.split();
  dist::Rng key_rng = master.split();
  [[maybe_unused]] dist::Rng value_rng = master.split();

  const std::unique_ptr<hashing::KeyMapper> mapper = detail::make_mapper(cfg_);
  const dist::Discrete server_pick(shares);

  JobTable<RequestState> requests;
  JobTable<KeyContext> keys;

  stats::Welford w_network;
  stats::Welford w_server;
  stats::Welford w_db;
  stats::Welford w_total;
  std::vector<double> total_samples;
  std::uint64_t measured_keys = 0;
  std::uint64_t measured_misses = 0;
  std::uint64_t keys_completed = 0;

  const obs::Recorder& rec = cfg_.recorder;
  obs::LatencyStat* st_network = rec.latency("stage.network_us");
  obs::LatencyStat* st_server = rec.latency("stage.server_us");
  obs::LatencyStat* st_db = rec.latency("stage.database_us");
  obs::LatencyStat* st_total = rec.latency("stage.total_us");
  obs::LatencyStat* st_gap = rec.latency("request.sync_gap_us");
  obs::LatencyStat* st_slack = rec.latency("request.sync_slack_us");
  obs::LatencyStat* st_db_sojourn = rec.latency("db.sojourn_us");
  obs::Counter* ct_keys = rec.counter("sim.keys_completed");
  obs::Counter* ct_misses = rec.counter("db.misses");

  std::unique_ptr<workload::KeySpace> keyspace;
  std::vector<std::unique_ptr<cache::LruStore>> stores;
  std::string key_buf;  // reused for every key_for_rank rendering
  workload::ValueSizeModel value_sizes(214.476, 0.348238, 1,
                                       cfg_.common.max_value_bytes);
  if (real_cache) {
    keyspace = std::make_unique<workload::KeySpace>(cfg_.keyspace_size,
                                                    cfg_.zipf_exponent);
    cache::SlabAllocator::Config scfg;
    scfg.memory_limit = cfg_.common.cache_bytes_per_server;
    scfg.page_size = std::min<std::size_t>(
        64 * 1024, std::max<std::size_t>(cfg_.common.cache_bytes_per_server / 32,
                                         8 * 1024));
    scfg.growth_factor = 2.0;
    stores.reserve(M);
    for (std::size_t j = 0; j < M; ++j) {
      stores.push_back(std::make_unique<cache::LruStore>(scfg));
    }
  }

  std::function<void(std::uint64_t)> complete_key;
  complete_key = [&](std::uint64_t job) {
    const KeyContext ctx =
        keys.take(job, "legacy EndToEndSim: completion for unknown key job");
    ++keys_completed;
    auto& req = requests.at(
        ctx.request_id, "legacy EndToEndSim: key completion unknown request");
    const double total = s.now() - req.start;
    req.max_server = std::max(req.max_server, ctx.server_sojourn);
    req.max_db = std::max(req.max_db, ctx.db_sojourn);
    req.max_total = std::max(req.max_total, total);
    req.sum_total += total;
    if (--req.remaining == 0) {
      if (req.measured) {
        w_network.add(sys.network_latency);
        w_server.add(req.max_server);
        w_db.add(req.max_db);
        w_total.add(req.max_total);
        total_samples.push_back(req.max_total);
        obs::observe(st_network, obs::to_us(sys.network_latency));
        obs::observe(st_server, obs::to_us(req.max_server));
        obs::observe(st_db, obs::to_us(req.max_db));
        obs::observe(st_total, obs::to_us(req.max_total));
        obs::observe(st_gap,
                     obs::to_us(req.max_total -
                                req.sum_total /
                                    static_cast<double>(sys.keys_per_request)));
        obs::observe(st_slack,
                     obs::to_us(sys.network_latency + req.max_server +
                                req.max_db - req.max_total));
      }
      requests.erase(ctx.request_id,
                     "legacy EndToEndSim: double-completed request");
    }
  };

  std::unique_ptr<DelayStation> db_inf;
  std::unique_ptr<sim::ServiceStation> db_q;
  std::unique_ptr<sim::MultiServerStation> db_pool;
  const auto on_db_departure = [&](const sim::Departure& d) {
    KeyContext& ctx = keys.at(
        d.job_id, "legacy EndToEndSim: database departure for unknown key");
    ctx.db_sojourn = d.sojourn_time();
    if (requests
            .at(ctx.request_id,
                "legacy EndToEndSim: database departure unknown request")
            .measured) {
      obs::observe(st_db_sojourn, obs::to_us(d.sojourn_time()));
    }
    if (real_cache) {
      // The legacy refill path: render the key again, seed a fresh value
      // RNG from the rank, sample the size, hash the key inside set_sized.
      keyspace->key_for_rank(ctx.key_rank, key_buf);
      dist::Rng vr(hashing::mix64(ctx.key_rank ^ 0x5eedull));
      stores[ctx.server]->set_sized(key_buf, value_sizes.sample(vr), s.now());
    }
    s.schedule_in(net_half, [&, job = d.job_id] { complete_key(job); });
  };
  switch (cfg_.db_mode) {
    case DbMode::kInfiniteServer:
      db_inf = std::make_unique<DelayStation>(
          s, std::make_unique<dist::Exponential>(sys.db_service_rate),
          master.split(), on_db_departure);
      break;
    case DbMode::kSingleServer:
      db_q = std::make_unique<sim::ServiceStation>(
          s, std::make_unique<dist::Exponential>(sys.db_service_rate),
          master.split(), on_db_departure);
      break;
    case DbMode::kPooled:
      db_pool = std::make_unique<sim::MultiServerStation>(
          s, cfg_.db_servers,
          std::make_unique<dist::Exponential>(sys.db_service_rate),
          master.split(), on_db_departure);
      break;
  }
  const auto submit_db = [&](std::uint64_t job) {
    if (db_inf) {
      db_inf->submit(job);
    } else if (db_pool) {
      db_pool->arrive(job);
    } else {
      db_q->arrive(job);
    }
  };

  std::vector<std::unique_ptr<sim::ServiceStation>> servers;
  servers.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    const std::string prefix = "server." + std::to_string(j);
    servers.push_back(std::make_unique<sim::ServiceStation>(
        s, std::make_unique<dist::Exponential>(sys.rate_of(j)),
        master.split(), [&, j](const sim::Departure& d) {
          auto& ctx = keys.at(
              d.job_id, "legacy EndToEndSim: server departure unknown key");
          ctx.server_sojourn = d.sojourn_time();
          bool miss;
          if (real_cache) {
            // Legacy probe: re-render the key string and let get() hash it.
            keyspace->key_for_rank(ctx.key_rank, key_buf);
            miss = !stores[j]->get(key_buf, s.now()).has_value();
          } else {
            miss = sys.miss_ratio > 0.0 && miss_rng.bernoulli(sys.miss_ratio);
          }
          const auto& req = requests.at(
              ctx.request_id,
              "legacy EndToEndSim: server departure unknown request");
          if (req.measured) {
            ++measured_keys;
            obs::bump(ct_keys);
            if (miss) {
              ++measured_misses;
              obs::bump(ct_misses);
            }
          }
          if (miss) {
            submit_db(d.job_id);
          } else {
            s.schedule_in(net_half,
                          [&, job = d.job_id] { complete_key(job); });
          }
        }));
    servers.back()->observe_split(rec.latency(prefix + ".wait_us"),
                                  rec.latency(prefix + ".service_us"),
                                  cfg_.common.warmup_time);
  }

  const double rate = cfg_.effective_request_rate();
  bool generating = true;
  std::function<void()> arrival = [&] {
    if (!generating) return;
    RequestState st;
    st.start = s.now();
    st.remaining = sys.keys_per_request;
    st.measured = s.now() >= cfg_.common.warmup_time;
    const std::uint64_t rid = requests.insert(st);
    for (std::uint32_t i = 0; i < sys.keys_per_request; ++i) {
      KeyContext ctx;
      ctx.request_id = rid;
      std::size_t server_idx;
      if (real_cache) {
        // Legacy routing: render the key string, hash it in the mapper.
        ctx.key_rank = keyspace->sample_rank(key_rng);
        keyspace->key_for_rank(ctx.key_rank, key_buf);
        server_idx = mapper->server_for(key_buf);
      } else {
        server_idx = server_pick.sample(key_rng);
      }
      ctx.server = server_idx;
      const std::uint64_t job = keys.insert(ctx);
      s.schedule_in(net_half,
                    [&, job, server_idx] { servers[server_idx]->arrive(job); });
    }
    s.schedule_in(req_rng.exponential(rate), [&arrival] { arrival(); });
  };
  s.schedule_in(req_rng.exponential(rate), [&arrival] { arrival(); });

  s.run_until(horizon);
  generating = false;
  s.run();

  EndToEndResult res;
  res.network = stats::mean_ci(w_network);
  res.server = stats::mean_ci(w_server);
  res.database = stats::mean_ci(w_db);
  res.total = stats::mean_ci(w_total);
  res.total_samples = std::move(total_samples);
  res.measured_miss_ratio =
      measured_keys == 0
          ? 0.0
          : static_cast<double>(measured_misses) /
                static_cast<double>(measured_keys);
  res.server_utilization.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    res.server_utilization.push_back(servers[j]->utilization(horizon));
  }
  res.requests_completed = w_total.count();
  res.keys_completed = keys_completed;
  res.events_executed = s.events_executed();
  return res;
}

}  // namespace mclat::bench::legacy_workload
