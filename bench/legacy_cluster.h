// legacy_cluster.h — the pre-engine cluster simulators, kept verbatim as
// in-process twins for the engine equivalence suite (ctest label `cluster`)
// and the bench floor in scripts/ci.sh.
//
// PR 5 rebuilt EndToEndSim, TraceReplaySim and WorkloadDrivenSim on the
// composable fork-join engine (src/cluster/engine/). The contract of that
// refactor is *sample-for-sample* identity: the engine-backed simulators
// must produce the same RNG draws, the same event schedule and therefore
// the same statistics as the code they replaced, for every mode
// combination the old code supported. These functions are that old code —
// the three run() bodies copied unchanged (modulo namespace) at the commit
// boundary — compiled into the same binary so the equivalence tests compare
// both pipelines in-process, the same pattern as bench/legacy_sim.h
// (PR 3) and bench/legacy_workload.h (PR 4).
//
// This is NOT production code: the simulators all run on the engine. Do
// not grow features here; new fields on the config structs (the redundancy
// policy, trace-replay miss_mode) are deliberately ignored — the twins
// implement exactly the pre-engine feature set.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/lru_store.h"
#include "cluster/delay_station.h"
#include "cluster/end_to_end.h"
#include "cluster/job_table.h"
#include "cluster/trace_replay.h"
#include "cluster/workload_driven.h"
#include "dist/discrete.h"
#include "dist/exponential.h"
#include "exec/seed_stream.h"
#include "hashing/consistent_hash.h"
#include "hashing/key_mapper.h"
#include "hashing/weighted_mapper.h"
#include "math/numerics.h"
#include "sim/multi_station.h"
#include "sim/simulator.h"
#include "sim/source.h"
#include "sim/station.h"
#include "stats/reservoir.h"
#include "stats/welford.h"
#include "workload/key_table.h"
#include "workload/keyspace.h"
#include "workload/size_model.h"
#include "workload/trace.h"

namespace mclat::bench::legacy_cluster {

namespace detail {

struct RequestState {
  double start = 0.0;
  std::uint32_t remaining = 0;
  double max_server = 0.0;
  double max_db = 0.0;
  double max_total = 0.0;
  double sum_total = 0.0;
  bool measured = false;
};

struct KeyContext {
  std::uint64_t request_id = 0;
  std::uint64_t key_rank = 0;
  std::size_t server = 0;
  double server_sojourn = 0.0;
  double db_sojourn = 0.0;
};

inline std::unique_ptr<hashing::KeyMapper> make_mapper(
    cluster::MapperKind kind, const std::vector<double>& shares) {
  switch (kind) {
    case cluster::MapperKind::kWeighted:
      return std::make_unique<hashing::WeightedMapper>(shares);
    case cluster::MapperKind::kRing:
      return std::make_unique<hashing::ConsistentHashRing>(shares.size());
    case cluster::MapperKind::kModulo:
      return std::make_unique<hashing::ModuloMapper>(shares.size());
  }
  throw std::logic_error("legacy_cluster make_mapper: unhandled mapper kind");
}

}  // namespace detail

/// The pre-engine EndToEndSim::run(), verbatim.
inline cluster::EndToEndResult run_end_to_end(
    const cluster::EndToEndConfig& cfg_) {
  using namespace mclat::cluster;
  using detail::KeyContext;
  using detail::RequestState;

  const core::SystemConfig& sys = cfg_.system;
  const std::vector<double> shares = sys.shares();
  const std::size_t M = shares.size();
  const double net_half = sys.network_latency / 2.0;
  const double horizon = cfg_.common.warmup_time + cfg_.common.measure_time;
  const bool real_cache = cfg_.miss_mode == MissMode::kRealCache;

  sim::Simulator s;
  dist::Rng master(cfg_.common.seed);
  dist::Rng req_rng = master.split();
  dist::Rng miss_rng = master.split();
  dist::Rng key_rng = master.split();
  [[maybe_unused]] dist::Rng value_rng = master.split();

  const std::unique_ptr<hashing::KeyMapper> mapper =
      detail::make_mapper(cfg_.mapper, shares);
  const dist::Discrete server_pick(shares);

  JobTable<RequestState> requests;
  JobTable<KeyContext> keys;

  stats::Welford w_network;
  stats::Welford w_server;
  stats::Welford w_db;
  stats::Welford w_total;
  std::vector<double> total_samples;
  std::uint64_t measured_keys = 0;
  std::uint64_t measured_misses = 0;
  std::uint64_t keys_completed = 0;

  const obs::Recorder& rec = cfg_.recorder;
  obs::LatencyStat* st_network = rec.latency("stage.network_us");
  obs::LatencyStat* st_server = rec.latency("stage.server_us");
  obs::LatencyStat* st_db = rec.latency("stage.database_us");
  obs::LatencyStat* st_total = rec.latency("stage.total_us");
  obs::LatencyStat* st_gap = rec.latency("request.sync_gap_us");
  obs::LatencyStat* st_slack = rec.latency("request.sync_slack_us");
  obs::LatencyStat* st_db_sojourn = rec.latency("db.sojourn_us");
  obs::Counter* ct_keys = rec.counter("sim.keys_completed");
  obs::Counter* ct_misses = rec.counter("db.misses");

  std::unique_ptr<workload::KeySpace> keyspace;
  std::unique_ptr<workload::KeyTable> key_table;
  std::vector<std::unique_ptr<cache::LruStore>> stores;
  const workload::ValueSizeModel value_sizes(214.476, 0.348238, 1,
                                             cfg_.common.max_value_bytes);
  if (real_cache) {
    keyspace = std::make_unique<workload::KeySpace>(cfg_.keyspace_size,
                                                    cfg_.zipf_exponent);
    key_table = std::make_unique<workload::KeyTable>(*keyspace, *mapper,
                                                     &value_sizes);
    cache::SlabAllocator::Config scfg;
    scfg.memory_limit = cfg_.common.cache_bytes_per_server;
    scfg.page_size = std::min<std::size_t>(
        64 * 1024, std::max<std::size_t>(cfg_.common.cache_bytes_per_server / 32,
                                         8 * 1024));
    scfg.growth_factor = 2.0;
    stores.reserve(M);
    for (std::size_t j = 0; j < M; ++j) {
      stores.push_back(std::make_unique<cache::LruStore>(scfg));
    }
  }

  std::function<void(std::uint64_t)> complete_key;

  complete_key = [&](std::uint64_t job) {
    const KeyContext ctx =
        keys.take(job, "EndToEndSim: completion for unknown key job");
    ++keys_completed;
    auto& req = requests.at(
        ctx.request_id, "EndToEndSim: key completion for unknown request");
    const double total = s.now() - req.start;
    req.max_server = std::max(req.max_server, ctx.server_sojourn);
    req.max_db = std::max(req.max_db, ctx.db_sojourn);
    req.max_total = std::max(req.max_total, total);
    req.sum_total += total;
    if (--req.remaining == 0) {
      if (req.measured) {
        w_network.add(sys.network_latency);
        w_server.add(req.max_server);
        w_db.add(req.max_db);
        w_total.add(req.max_total);
        total_samples.push_back(req.max_total);
        obs::observe(st_network, obs::to_us(sys.network_latency));
        obs::observe(st_server, obs::to_us(req.max_server));
        obs::observe(st_db, obs::to_us(req.max_db));
        obs::observe(st_total, obs::to_us(req.max_total));
        obs::observe(st_gap,
                     obs::to_us(req.max_total -
                                req.sum_total /
                                    static_cast<double>(sys.keys_per_request)));
        obs::observe(st_slack,
                     obs::to_us(sys.network_latency + req.max_server +
                                req.max_db - req.max_total));
      }
      requests.erase(ctx.request_id,
                     "EndToEndSim: double-completed request");
    }
  };

  std::unique_ptr<DelayStation> db_inf;
  std::unique_ptr<sim::ServiceStation> db_q;
  std::unique_ptr<sim::MultiServerStation> db_pool;
  const auto on_db_departure = [&](const sim::Departure& d) {
    KeyContext& ctx =
        keys.at(d.job_id, "EndToEndSim: database departure for unknown key");
    ctx.db_sojourn = d.sojourn_time();
    if (requests
            .at(ctx.request_id,
                "EndToEndSim: database departure for unknown request")
            .measured) {
      obs::observe(st_db_sojourn, obs::to_us(d.sojourn_time()));
    }
    if (real_cache) {
      const workload::KeyTable::View kv = key_table->view(ctx.key_rank);
      stores[ctx.server]->set_sized_hashed(kv.key, kv.hash, kv.value_bytes,
                                           s.now());
    }
    s.schedule_in(net_half, [&, job = d.job_id] { complete_key(job); });
  };
  switch (cfg_.db_mode) {
    case DbMode::kInfiniteServer:
      db_inf = std::make_unique<DelayStation>(
          s, std::make_unique<dist::Exponential>(sys.db_service_rate),
          master.split(), on_db_departure);
      break;
    case DbMode::kSingleServer:
      db_q = std::make_unique<sim::ServiceStation>(
          s, std::make_unique<dist::Exponential>(sys.db_service_rate),
          master.split(), on_db_departure);
      break;
    case DbMode::kPooled:
      db_pool = std::make_unique<sim::MultiServerStation>(
          s, cfg_.db_servers,
          std::make_unique<dist::Exponential>(sys.db_service_rate),
          master.split(), on_db_departure);
      break;
  }
  const auto submit_db = [&](std::uint64_t job) {
    if (db_inf) {
      db_inf->submit(job);
    } else if (db_pool) {
      db_pool->arrive(job);
    } else {
      db_q->arrive(job);
    }
  };

  std::vector<std::unique_ptr<sim::ServiceStation>> servers;
  servers.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    const std::string prefix = "server." + std::to_string(j);
    servers.push_back(std::make_unique<sim::ServiceStation>(
        s, std::make_unique<dist::Exponential>(sys.rate_of(j)),
        master.split(), [&, j](const sim::Departure& d) {
          auto& ctx = keys.at(
              d.job_id, "EndToEndSim: server departure for unknown key");
          ctx.server_sojourn = d.sojourn_time();
          bool miss;
          if (real_cache) {
            const workload::KeyTable::View kv = key_table->view(ctx.key_rank);
            miss = !stores[j]->get(kv.key, kv.hash, s.now()).has_value();
          } else {
            miss = sys.miss_ratio > 0.0 && miss_rng.bernoulli(sys.miss_ratio);
          }
          const auto& req = requests.at(
              ctx.request_id,
              "EndToEndSim: server departure for unknown request");
          if (req.measured) {
            ++measured_keys;
            obs::bump(ct_keys);
            if (miss) {
              ++measured_misses;
              obs::bump(ct_misses);
            }
          }
          if (miss) {
            submit_db(d.job_id);
          } else {
            s.schedule_in(net_half,
                          [&, job = d.job_id] { complete_key(job); });
          }
        }));
    servers.back()->observe_split(rec.latency(prefix + ".wait_us"),
                                  rec.latency(prefix + ".service_us"),
                                  cfg_.common.warmup_time);
  }

  const double rate = cfg_.effective_request_rate();
  bool generating = true;
  std::function<void()> arrival = [&] {
    if (!generating) return;
    RequestState st;
    st.start = s.now();
    st.remaining = sys.keys_per_request;
    st.measured = s.now() >= cfg_.common.warmup_time;
    const std::uint64_t rid = requests.insert(st);
    for (std::uint32_t i = 0; i < sys.keys_per_request; ++i) {
      KeyContext ctx;
      ctx.request_id = rid;
      std::size_t server_idx;
      if (real_cache) {
        ctx.key_rank = keyspace->sample_rank(key_rng);
        server_idx = key_table->server(ctx.key_rank);
      } else {
        server_idx = server_pick.sample(key_rng);
      }
      ctx.server = server_idx;
      const std::uint64_t job = keys.insert(ctx);
      s.schedule_in(net_half,
                    [&, job, server_idx] { servers[server_idx]->arrive(job); });
    }
    s.schedule_in(req_rng.exponential(rate), [&arrival] { arrival(); });
  };
  s.schedule_in(req_rng.exponential(rate), [&arrival] { arrival(); });

  s.run_until(horizon);
  generating = false;
  s.run();

  cluster::EndToEndResult res;
  res.network = stats::mean_ci(w_network);
  res.server = stats::mean_ci(w_server);
  res.database = stats::mean_ci(w_db);
  res.total = stats::mean_ci(w_total);
  res.total_samples = std::move(total_samples);
  res.measured_miss_ratio =
      measured_keys == 0
          ? 0.0
          : static_cast<double>(measured_misses) /
                static_cast<double>(measured_keys);
  res.server_utilization.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    res.server_utilization.push_back(servers[j]->utilization(horizon));
    obs::set_gauge(rec.gauge("server." + std::to_string(j) + ".utilization"),
                   res.server_utilization.back());
  }
  res.requests_completed = w_total.count();
  res.keys_completed = keys_completed;
  res.events_executed = s.events_executed();
  return res;
}

/// The pre-engine TraceReplaySim::run(), verbatim (Bernoulli misses only,
/// no warmup cutoff, `rank % keys.size()` aliasing and all).
inline cluster::TraceReplayResult run_trace_replay(
    const cluster::TraceReplayConfig& cfg_, const workload::Trace& trace,
    const workload::KeySpace& keys) {
  using namespace mclat::cluster;

  struct RequestState {
    double start = 0.0;
    std::uint32_t remaining = 0;
    std::uint32_t n_keys = 0;
    double max_server = 0.0;
    double max_db = 0.0;
    double max_total = 0.0;
    double sum_total = 0.0;
  };
  struct KeyState {
    std::uint32_t request_index = 0;
    double server_sojourn = 0.0;
    double db_sojourn = 0.0;
  };

  math::require(!trace.empty(), "TraceReplaySim: empty trace");
  const core::SystemConfig& sys = cfg_.system;
  const std::size_t M = sys.shares().size();
  const double net_half = sys.network_latency / 2.0;

  std::unordered_map<std::uint64_t, std::uint32_t> request_index;
  std::vector<RequestState> requests;
  for (const auto& rec : trace.records()) {
    const auto [it, fresh] = request_index.try_emplace(
        rec.request_id, static_cast<std::uint32_t>(requests.size()));
    if (fresh) requests.emplace_back();
    RequestState& req = requests[it->second];
    req.remaining += 1;
    req.n_keys += 1;
    req.start = fresh ? rec.time : std::min(req.start, rec.time);
  }

  sim::Simulator s;
  dist::Rng master(cfg_.common.seed);
  dist::Rng miss_rng = master.split();
  const auto mapper = detail::make_mapper(cfg_.mapper, sys.shares());

  JobTable<KeyState> in_flight;

  stats::Welford w_net;
  stats::Welford w_server;
  stats::Welford w_db;
  stats::Welford w_total;
  std::uint64_t keys_completed = 0;
  std::uint64_t misses = 0;
  std::uint64_t requests_completed = 0;

  const obs::Recorder& orec = cfg_.recorder;
  obs::LatencyStat* st_network = orec.latency("stage.network_us");
  obs::LatencyStat* st_server = orec.latency("stage.server_us");
  obs::LatencyStat* st_db = orec.latency("stage.database_us");
  obs::LatencyStat* st_total = orec.latency("stage.total_us");
  obs::LatencyStat* st_gap = orec.latency("request.sync_gap_us");
  obs::LatencyStat* st_slack = orec.latency("request.sync_slack_us");
  obs::LatencyStat* st_db_sojourn = orec.latency("db.sojourn_us");
  obs::Counter* ct_keys = orec.counter("sim.keys_completed");
  obs::Counter* ct_misses = orec.counter("db.misses");

  const auto complete_key = [&](std::uint64_t job) {
    const KeyState ks =
        in_flight.take(job, "TraceReplaySim: completion for unknown key job");
    ++keys_completed;
    obs::bump(ct_keys);
    math::require(ks.request_index < requests.size(),
                  "TraceReplaySim: key references an unknown request");
    RequestState& req = requests[ks.request_index];
    req.max_server = std::max(req.max_server, ks.server_sojourn);
    req.max_db = std::max(req.max_db, ks.db_sojourn);
    const double total = s.now() - req.start;
    req.max_total = std::max(req.max_total, total);
    req.sum_total += total;
    if (--req.remaining == 0) {
      ++requests_completed;
      w_net.add(sys.network_latency);
      w_server.add(req.max_server);
      w_db.add(req.max_db);
      w_total.add(req.max_total);
      obs::observe(st_network, obs::to_us(sys.network_latency));
      obs::observe(st_server, obs::to_us(req.max_server));
      obs::observe(st_db, obs::to_us(req.max_db));
      obs::observe(st_total, obs::to_us(req.max_total));
      obs::observe(st_gap,
                   obs::to_us(req.max_total -
                              req.sum_total /
                                  static_cast<double>(req.n_keys)));
      obs::observe(st_slack,
                   obs::to_us(sys.network_latency + req.max_server +
                              req.max_db - req.max_total));
    }
  };

  cluster::DelayStation db(
      s, std::make_unique<dist::Exponential>(sys.db_service_rate),
      master.split(), [&](const sim::Departure& d) {
        in_flight
            .at(d.job_id,
                "TraceReplaySim: database departure for "
                "unknown key")
            .db_sojourn = d.sojourn_time();
        obs::observe(st_db_sojourn, obs::to_us(d.sojourn_time()));
        s.schedule_in(net_half, [&, job = d.job_id] { complete_key(job); });
      });

  std::vector<std::unique_ptr<sim::ServiceStation>> servers;
  servers.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    servers.push_back(std::make_unique<sim::ServiceStation>(
        s, std::make_unique<dist::Exponential>(sys.rate_of(j)),
        master.split(), [&](const sim::Departure& d) {
          in_flight
              .at(d.job_id,
                  "TraceReplaySim: server departure for unknown key")
              .server_sojourn = d.sojourn_time();
          const bool miss =
              sys.miss_ratio > 0.0 && miss_rng.bernoulli(sys.miss_ratio);
          if (miss) {
            ++misses;
            obs::bump(ct_misses);
            db.submit(d.job_id);
          } else {
            s.schedule_in(net_half,
                          [&, job = d.job_id] { complete_key(job); });
          }
        }));
    servers.back()->observe_split(
        orec.latency("server." + std::to_string(j) + ".wait_us"),
        orec.latency("server." + std::to_string(j) + ".service_us"));
  }

  workload::KeyTable key_table(keys, *mapper);
  double prev_time = 0.0;
  for (const auto& rec : trace.records()) {
    math::require(rec.time >= prev_time,
                  "TraceReplaySim: trace must be sorted by time");
    prev_time = rec.time;
    const std::uint64_t job =
        in_flight.insert(KeyState{request_index.at(rec.request_id), 0.0, 0.0});
    const std::size_t server = key_table.server(rec.key_rank % keys.size());
    s.schedule_at(rec.time + net_half,
                  [&, job, server] { servers[server]->arrive(job); });
  }
  s.run();

  cluster::TraceReplayResult res;
  res.network = stats::mean_ci(w_net);
  res.server = stats::mean_ci(w_server);
  res.database = stats::mean_ci(w_db);
  res.total = stats::mean_ci(w_total);
  res.requests_completed = requests_completed;
  res.keys_completed = keys_completed;
  res.measured_miss_ratio =
      keys_completed == 0
          ? 0.0
          : static_cast<double>(misses) / static_cast<double>(keys_completed);
  res.horizon = s.now();
  res.server_utilization.reserve(M);
  for (std::size_t j = 0; j < M; ++j) {
    res.server_utilization.push_back(servers[j]->utilization(s.now()));
    obs::set_gauge(
        orec.gauge("server." + std::to_string(j) + ".utilization"),
        res.server_utilization.back());
  }
  return res;
}

/// The pre-engine WorkloadDrivenSim::run(), verbatim.
inline cluster::MeasurementPools run_workload_driven(
    const cluster::WorkloadDrivenConfig& cfg_) {
  using namespace mclat::cluster;

  const core::SystemConfig& sys = cfg_.system;
  const std::vector<double> shares = sys.shares();
  MeasurementPools pools;
  pools.server_sojourns.resize(shares.size());
  pools.server_utilization.resize(shares.size(), 0.0);

  dist::Rng master(cfg_.common.seed);

  for (std::size_t j = 0; j < shares.size(); ++j) {
    if (shares[j] <= 0.0) continue;
    const workload::ArrivalSpec spec = sys.arrival_for_share(shares[j]);
    sim::Simulator s;
    dist::Rng station_rng = master.split();
    dist::Rng source_rng = master.split();
    dist::Rng pool_rng = master.split();
    stats::Reservoir pool(cfg_.pool_cap);
    const double measure_from = cfg_.common.warmup_time;
    std::uint64_t next_job = 0;

    sim::ServiceStation station(
        s,
        std::make_unique<dist::Exponential>(sys.rate_of(j)),
        station_rng,
        [&](const sim::Departure& d) {
          if (d.arrival >= measure_from) {
            pool.add(d.sojourn_time(), pool_rng);
          }
        });
    const std::string prefix = "server." + std::to_string(j);
    station.observe_split(cfg_.recorder.latency(prefix + ".wait_us"),
                          cfg_.recorder.latency(prefix + ".service_us"),
                          measure_from);
    sim::BatchSource source(
        s, spec.make_gap(), spec.make_batch(), source_rng,
        [&](std::uint64_t batch) {
          for (std::uint64_t k = 0; k < batch; ++k) station.arrive(next_job++);
        });
    source.start();
    s.run_until(cfg_.common.warmup_time + cfg_.common.measure_time);
    source.stop();

    pools.server_sojourns[j] = pool.take();
    pools.server_utilization[j] = station.utilization(s.now());
    pools.total_keys += station.completed();
    obs::set_gauge(cfg_.recorder.gauge(prefix + ".utilization"),
                   pools.server_utilization[j]);
    obs::bump(cfg_.recorder.counter("sim.keys_completed"),
              station.completed());
  }

  if (sys.miss_ratio > 0.0) {
    const double miss_rate = sys.miss_ratio * sys.total_key_rate;
    pools.measured_miss_rate_hz = miss_rate;
    sim::Simulator s;
    dist::Rng db_rng = master.split();
    dist::Rng arr_rng = master.split();
    dist::Rng pool_rng = master.split();
    stats::Reservoir pool(cfg_.pool_cap);
    obs::LatencyStat* db_stat = cfg_.recorder.latency("db.sojourn_us");
    obs::Counter* db_misses = cfg_.recorder.counter("db.misses");
    cluster::DelayStation db(
        s, std::make_unique<dist::Exponential>(sys.db_service_rate), db_rng,
        [&](const sim::Departure& d) {
          if (d.arrival >= cfg_.common.warmup_time) {
            pool.add(d.sojourn_time(), pool_rng);
            obs::observe(db_stat, obs::to_us(d.sojourn_time()));
            obs::bump(db_misses);
          }
        });
    std::uint64_t job = 0;
    std::function<void()> arrival = [&] {
      db.submit(job++);
      s.schedule_in(arr_rng.exponential(miss_rate), [&arrival] { arrival(); });
    };
    s.schedule_in(arr_rng.exponential(miss_rate), [&arrival] { arrival(); });
    s.run_until(cfg_.common.warmup_time + cfg_.common.measure_time);
    pools.db_sojourns = pool.take();
  }
  return pools;
}

}  // namespace mclat::bench::legacy_cluster
