// bench_micro_cache — microbenchmarks of the systems substrates: slab
// allocation, LRU store set/get under a Zipf workload, hashing and the
// key→server mappers.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cache/lru_store.h"
#include "dist/rng.h"
#include "dist/zipf.h"
#include "hashing/consistent_hash.h"
#include "hashing/hashes.h"
#include "hashing/weighted_mapper.h"

namespace {

using namespace mclat;

void BM_SlabAllocateDeallocate(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 16u << 20;
  cache::SlabAllocator slabs(cfg);
  for (auto _ : state) {
    void* p = slabs.allocate(200);
    benchmark::DoNotOptimize(p);
    slabs.deallocate(p);
  }
}
BENCHMARK(BM_SlabAllocateDeallocate);

void BM_LruStoreSet(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  cache::LruStore store(cfg);
  const std::string value(200, 'v');
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.set("key:" + std::to_string(i++ % 50'000), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruStoreSet);

void BM_LruStoreGetZipf(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  cache::LruStore store(cfg);
  const std::string value(200, 'v');
  std::vector<std::string> keys;
  for (int i = 0; i < 50'000; ++i) {
    keys.push_back("key:" + std::to_string(i));
    (void)store.set(keys.back(), value);
  }
  const dist::Zipf zipf(50'000, 1.0);
  dist::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(keys[zipf.sample(rng)]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruStoreGetZipf);

void BM_Fnv1a64(benchmark::State& state) {
  const std::string key = "user:profile:1234567890";
  for (auto _ : state) {
    benchmark::DoNotOptimize(hashing::fnv1a64(key));
  }
}
BENCHMARK(BM_Fnv1a64);

void BM_ConsistentHashLookup(benchmark::State& state) {
  const hashing::ConsistentHashRing ring(16, 160);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.server_for("object:" + std::to_string(i++ % 100'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsistentHashLookup);

void BM_WeightedMapperLookup(benchmark::State& state) {
  const hashing::WeightedMapper mapper({0.6, 0.2, 0.1, 0.1});
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapper.server_for("object:" + std::to_string(i++ % 100'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeightedMapperLookup);

void BM_ZipfSampleLargeKeyspace(benchmark::State& state) {
  const dist::Zipf zipf(100'000'000ull, 0.99);
  dist::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSampleLargeKeyspace);

}  // namespace

BENCHMARK_MAIN();
