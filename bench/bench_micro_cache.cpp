// bench_micro_cache — microbenchmarks of the systems substrates: slab
// allocation, LRU store set/get under a Zipf workload, hashing and the
// key→server mappers.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/lru_store.h"
#include "cluster/end_to_end.h"
#include "dist/rng.h"
#include "dist/zipf.h"
#include "hashing/consistent_hash.h"
#include "hashing/hashes.h"
#include "hashing/weighted_mapper.h"
#include "legacy_cache.h"
#include "legacy_workload.h"
#include "workload/key_table.h"
#include "workload/keyspace.h"
#include "workload/size_model.h"

namespace {

using namespace mclat;

void BM_SlabAllocateDeallocate(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 16u << 20;
  cache::SlabAllocator slabs(cfg);
  for (auto _ : state) {
    void* p = slabs.allocate(200);
    benchmark::DoNotOptimize(p);
    slabs.deallocate(p);
  }
}
BENCHMARK(BM_SlabAllocateDeallocate);

void BM_LruStoreSet(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  cache::LruStore store(cfg);
  const std::string value(200, 'v');
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.set("key:" + std::to_string(i++ % 50'000), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruStoreSet);

void BM_LruStoreGetZipf(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  cache::LruStore store(cfg);
  const std::string value(200, 'v');
  std::vector<std::string> keys;
  for (int i = 0; i < 50'000; ++i) {
    keys.push_back("key:" + std::to_string(i));
    (void)store.set(keys.back(), value);
  }
  const dist::Zipf zipf(50'000, 1.0);
  dist::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(keys[zipf.sample(rng)]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruStoreGetZipf);

void BM_Fnv1a64(benchmark::State& state) {
  const std::string key = "user:profile:1234567890";
  for (auto _ : state) {
    benchmark::DoNotOptimize(hashing::fnv1a64(key));
  }
}
BENCHMARK(BM_Fnv1a64);

void BM_ConsistentHashLookup(benchmark::State& state) {
  const hashing::ConsistentHashRing ring(16, 160);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.server_for("object:" + std::to_string(i++ % 100'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsistentHashLookup);

void BM_WeightedMapperLookup(benchmark::State& state) {
  const hashing::WeightedMapper mapper({0.6, 0.2, 0.1, 0.1});
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapper.server_for("object:" + std::to_string(i++ % 100'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeightedMapperLookup);

// ---- memoized workload metadata vs the legacy string/RNG/hash path -------
// Each pair below runs the production path and its pre-optimisation twin
// (*_LegacyWorkload) interleaved in one process over the same pre-sampled
// Zipf rank stream; BENCH_workload.json is built from these medians.

/// Ranks drawn once so both twins replay the identical access pattern and
/// neither pays the Zipf rejection-inversion inside the timed loop.
std::vector<std::uint64_t> presampled_ranks(std::uint64_t n_keys,
                                            std::size_t count) {
  const dist::Zipf zipf(n_keys, 0.99);
  dist::Rng rng(11);
  std::vector<std::uint64_t> ranks(count);
  for (auto& r : ranks) r = zipf.sample(rng);
  return ranks;
}

constexpr std::uint64_t kBenchKeys = 200'000;

void BM_KeyMaterializeAndMap(benchmark::State& state) {
  const workload::KeySpace keys(kBenchKeys, 0.99);
  const hashing::WeightedMapper mapper({0.3, 0.25, 0.2, 0.15, 0.1});
  // Eager build: the once-per-trial table construction is setup, not the
  // per-arrival path this pair isolates (a lazy table would smear chunk
  // builds across the first timed iterations).
  workload::KeyTable table(keys, mapper, nullptr,
                           workload::KeyTable::Build::kEager);
  const auto ranks = presampled_ranks(kBenchKeys, 1 << 16);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.server(ranks[i++ & (ranks.size() - 1)]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyMaterializeAndMap);

void BM_KeyMaterializeAndMap_LegacyWorkload(benchmark::State& state) {
  const workload::KeySpace keys(kBenchKeys, 0.99);
  const hashing::WeightedMapper mapper({0.3, 0.25, 0.2, 0.15, 0.1});
  const auto ranks = presampled_ranks(kBenchKeys, 1 << 16);
  std::string key_buf;
  std::size_t i = 0;
  for (auto _ : state) {
    keys.key_for_rank(ranks[i++ & (ranks.size() - 1)], key_buf);
    benchmark::DoNotOptimize(mapper.server_for(key_buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyMaterializeAndMap_LegacyWorkload);

void BM_RefillValueMetadata(benchmark::State& state) {
  const workload::KeySpace keys(kBenchKeys, 0.99);
  const hashing::WeightedMapper mapper({0.3, 0.25, 0.2, 0.15, 0.1});
  const workload::ValueSizeModel values(214.476, 0.348238, 1, 4096);
  workload::KeyTable table(keys, mapper, &values,
                           workload::KeyTable::Build::kEager);
  const auto ranks = presampled_ranks(kBenchKeys, 1 << 16);
  std::size_t i = 0;
  for (auto _ : state) {
    const workload::KeyTable::View kv =
        table.view(ranks[i++ & (ranks.size() - 1)]);
    benchmark::DoNotOptimize(kv.hash + kv.value_bytes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RefillValueMetadata);

void BM_RefillValueMetadata_LegacyWorkload(benchmark::State& state) {
  const workload::KeySpace keys(kBenchKeys, 0.99);
  const workload::ValueSizeModel values(214.476, 0.348238, 1, 4096);
  const auto ranks = presampled_ranks(kBenchKeys, 1 << 16);
  std::string key_buf;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::uint64_t rank = ranks[i++ & (ranks.size() - 1)];
    keys.key_for_rank(rank, key_buf);
    dist::Rng vr(hashing::mix64(rank ^ workload::kValueSeedSalt));
    benchmark::DoNotOptimize(hashing::fnv1a64(key_buf) + values.sample(vr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RefillValueMetadata_LegacyWorkload);

// Both twins walk the identical {key, hash} records — mirroring the
// KeyTable layout, where the memoized hash arrives on the same cache
// lines as the key — so the pair isolates "hash loaded" vs "hash
// recomputed", not a memory-traffic difference between the benches.
struct KeyedEntry {
  std::string key;
  std::uint64_t hash;
};

template <class Store>
std::vector<KeyedEntry> populated_entries(Store& store) {
  const std::string value(200, 'v');
  std::vector<KeyedEntry> entries;
  entries.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    std::string key = "key:" + std::to_string(i);
    const std::uint64_t hash = hashing::fnv1a64(key);
    (void)store.set(key, value);
    entries.push_back(KeyedEntry{std::move(key), hash});
  }
  return entries;
}

void BM_LruStoreGetPrehashed(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  cache::LruStore store(cfg);
  const auto entries = populated_entries(store);
  const dist::Zipf zipf(50'000, 1.0);
  dist::Rng rng(1);
  for (auto _ : state) {
    const KeyedEntry& e = entries[zipf.sample(rng)];
    benchmark::DoNotOptimize(store.get(e.key, e.hash, 0.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruStoreGetPrehashed);

void BM_LruStoreGetPrehashed_LegacyWorkload(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  cache::LruStore store(cfg);
  const auto entries = populated_entries(store);
  const dist::Zipf zipf(50'000, 1.0);
  dist::Rng rng(1);
  for (auto _ : state) {
    const KeyedEntry& e = entries[zipf.sample(rng)];
    benchmark::DoNotOptimize(store.get(e.key, 0.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruStoreGetPrehashed_LegacyWorkload);

// ---- flat open-addressing index vs the unordered_map index ---------------
// Each pair below runs the production store (flat_index.h) and the verbatim
// pre-rewrite std::unordered_map store (legacy_cache.h, *_LegacyCache)
// over the same pre-generated key/hash stream; both sides use the
// prehashed entry points, so the pairs isolate the index *structure* —
// one-cache-line linear probes vs chained node walks, and backward-shift
// deletion vs node free — not hashing. scripts/bench_cache.sh folds the
// medians into BENCH_cache.json.

// Ranks presampled outside the timed loop (the Zipf rejection-inversion
// costs as much as the lookup itself and its run-to-run noise would wash
// out the index ratio); the loop times get = one index probe + LRU splice.
template <class Store>
void get_presampled_loop(benchmark::State& state, Store& store,
                         const std::vector<KeyedEntry>& entries) {
  const auto ranks = presampled_ranks(entries.size(), 1 << 16);
  std::size_t i = 0;
  for (auto _ : state) {
    const KeyedEntry& e = entries[ranks[i++ & (ranks.size() - 1)]];
    benchmark::DoNotOptimize(store.get(e.key, e.hash, 0.0));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LruStoreGetPresampled(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  cache::LruStore store(cfg);
  const auto entries = populated_entries(store);
  get_presampled_loop(state, store, entries);
}
BENCHMARK(BM_LruStoreGetPresampled);

void BM_LruStoreGetPresampled_LegacyCache(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  bench::legacy_cache::LruStore store(cfg);
  const auto entries = populated_entries(store);
  get_presampled_loop(state, store, entries);
}
BENCHMARK(BM_LruStoreGetPresampled_LegacyCache);

// Index mutation under steady eviction: 200K keys cycled through a store
// that holds ~50K, so every set is an insert plus (usually) an
// eviction-driven erase. The flat index pays a probe + backward shift; the
// unordered_map pays a node allocation, a bucket relink and a node free.
template <class Store>
void set_churn_loop(benchmark::State& state, Store& store) {
  std::vector<KeyedEntry> entries;
  entries.reserve(200'000);
  for (int i = 0; i < 200'000; ++i) {
    std::string key = "key:" + std::to_string(i);
    const std::uint64_t hash = hashing::fnv1a64(key);
    entries.push_back(KeyedEntry{std::move(key), hash});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const KeyedEntry& e = entries[i++ % entries.size()];
    benchmark::DoNotOptimize(store.set_sized_hashed(e.key, e.hash, 200, 0.0));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LruStoreSetChurn(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  cache::LruStore store(cfg);
  set_churn_loop(state, store);
}
BENCHMARK(BM_LruStoreSetChurn);

void BM_LruStoreSetChurn_LegacyCache(benchmark::State& state) {
  cache::SlabAllocator::Config cfg;
  cfg.memory_limit = 32u << 20;
  bench::legacy_cache::LruStore store(cfg);
  set_churn_loop(state, store);
}
BENCHMARK(BM_LruStoreSetChurn_LegacyCache);

cluster::EndToEndConfig real_cache_bench_config() {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.total_key_rate = 4.0 * 40'000.0;
  cfg.system.keys_per_request = 50;
  cfg.miss_mode = cluster::MissMode::kRealCache;
  cfg.keyspace_size = 100'000;
  cfg.common.cache_bytes_per_server = 4u << 20;
  // A multi-second horizon so the once-per-trial KeyTable build amortizes
  // the way it does in the figure harnesses (which run 10+ simulated
  // seconds); a sub-second horizon would mostly time table construction.
  cfg.common.warmup_time = 0.2;
  cfg.common.measure_time = 2.0;
  cfg.common.seed = 21;
  return cfg;
}

void BM_EndToEndRealCacheWorkload(benchmark::State& state) {
  const cluster::EndToEndConfig cfg = real_cache_bench_config();
  std::uint64_t keys_done = 0;
  for (auto _ : state) {
    cluster::EndToEndSim sim(cfg);
    const cluster::EndToEndResult r = sim.run();
    keys_done += r.keys_completed;
    benchmark::DoNotOptimize(r.total.mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys_done));
}
BENCHMARK(BM_EndToEndRealCacheWorkload)->Unit(benchmark::kMillisecond);

void BM_EndToEndRealCacheWorkload_LegacyWorkload(benchmark::State& state) {
  const cluster::EndToEndConfig cfg = real_cache_bench_config();
  std::uint64_t keys_done = 0;
  for (auto _ : state) {
    const cluster::EndToEndResult r =
        bench::legacy_workload::run_end_to_end(cfg);
    keys_done += r.keys_completed;
    benchmark::DoNotOptimize(r.total.mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys_done));
}
BENCHMARK(BM_EndToEndRealCacheWorkload_LegacyWorkload)
    ->Unit(benchmark::kMillisecond);

// The large-keyspace fast path end to end: a million-key real-cache trial
// with the KeyTable capped at 48 MiB — just under the ~50 MiB an unbounded
// million-key table occupies, so the budget is genuinely active (the Zipf
// tail keeps evicting and rebuilding cold chunks) without degenerating
// into a rebuild per access. Wall-clock includes the lazy first-touch
// chunk builds, which dominate a single trial at this keyspace — exactly
// the cost profile the figure harnesses see. bench_ext_large_keyspace
// carries the RSS measurement; this bench is the keys/s tripwire
// (scripts/ci.sh --bench-smoke).
void BM_EndToEndMillionKeyBoundedTable(benchmark::State& state) {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.total_key_rate = 4.0 * 40'000.0;
  cfg.system.keys_per_request = 50;
  cfg.miss_mode = cluster::MissMode::kRealCache;
  cfg.keyspace_size = 1'000'000;
  cfg.common.cache_bytes_per_server = 4u << 20;
  cfg.common.keytable_budget_bytes = 48u << 20;
  cfg.common.warmup_time = 0.1;
  cfg.common.measure_time = 0.5;
  cfg.common.seed = 77;
  std::uint64_t keys_done = 0;
  for (auto _ : state) {
    cluster::EndToEndSim sim(cfg);
    const cluster::EndToEndResult r = sim.run();
    keys_done += r.keys_completed;
    benchmark::DoNotOptimize(r.total.mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys_done));
}
BENCHMARK(BM_EndToEndMillionKeyBoundedTable)->Unit(benchmark::kMillisecond);

// A miss storm through the coalescing path: Bernoulli r = 1 carries no key
// identity, so every concurrent miss of a server parks behind its one
// in-flight fetch — slow fetches (μ_D = 200/s against λ = 10 K misses/s)
// keep the waiter lists long. Exercises FetchTable park/release churn plus
// the stored-handler waiter delivery in the DB departure path.
void BM_CoalescedMissStorm(benchmark::State& state) {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.total_key_rate = 4.0 * 10'000.0;
  cfg.system.keys_per_request = 10;
  cfg.system.miss_ratio = 1.0;
  cfg.system.db_service_rate = 200.0;
  cfg.common.coalescing = cluster::MissCoalescing::kPerServer;
  cfg.common.warmup_time = 0.2;
  cfg.common.measure_time = 2.0;
  cfg.common.seed = 33;
  std::uint64_t keys_done = 0;
  for (auto _ : state) {
    cluster::EndToEndSim sim(cfg);
    const cluster::EndToEndResult r = sim.run();
    keys_done += r.keys_completed;
    benchmark::DoNotOptimize(r.measured_delayed_hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys_done));
}
BENCHMARK(BM_CoalescedMissStorm)->Unit(benchmark::kMillisecond);

// The full replica lifecycle on the hot path: hedged d = 2 at rho ~ 0.45,
// so a few percent of keys arm a deadline event, fire backups from the
// dedicated hedge stream, and every win cancels its losers (O(1)
// generation-tag kill for in-flight hops, FIFO pull for queued replicas).
// Exercises ReplicaSet group churn, the P2 deadline estimator, and the
// kernel's cancellation path under load.
void BM_HedgedFanout(benchmark::State& state) {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.total_key_rate = 4.0 * 36'000.0;
  cfg.system.keys_per_request = 1;
  cfg.system.miss_ratio = 0.01;
  cfg.redundancy = cluster::RedundancyPolicy::hedged(2);
  cfg.common.warmup_time = 0.2;
  cfg.common.measure_time = 2.0;
  cfg.common.seed = 55;
  std::uint64_t keys_done = 0;
  for (auto _ : state) {
    cluster::EndToEndSim sim(cfg);
    const cluster::EndToEndResult r = sim.run();
    keys_done += r.keys_completed;
    benchmark::DoNotOptimize(r.replicas_cancelled);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(keys_done));
}
BENCHMARK(BM_HedgedFanout)->Unit(benchmark::kMillisecond);

void BM_ZipfSampleLargeKeyspace(benchmark::State& state) {
  const dist::Zipf zipf(100'000'000ull, 0.99);
  dist::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSampleLargeKeyspace);

}  // namespace

BENCHMARK_MAIN();
