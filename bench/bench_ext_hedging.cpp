// bench_ext_hedging — extension experiment: the replication phase diagram
// (Poloczek & Ciucu, "Contrasting Effects of Replication in Parallel
// Systems", arXiv 1602.07978), run through the event-driven fork-join
// cluster with the full replica lifecycle: immediate fan-out vs
// deadline-triggered hedging, losers running to completion vs cancelled on
// the win.
//
// Axes: redundancy degree d (columns) x per-server load (rows) x burst
// degree (tables). Mode B's per-server batch is X ~ Binomial(N, p_j), so
// the keys-per-request N is the burst-degree axis: N = 1 keeps replicas
// competing only with other requests, larger N makes every request flood
// the cluster with its own 2N-replica burst and drags the harmful phase to
// lower base loads — the same contrast the phase diagram predicts.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/end_to_end.h"

namespace {

using namespace mclat;

double p99(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  return samples[static_cast<std::size_t>(
      0.99 * static_cast<double>(samples.size() - 1))];
}

struct Cell {
  double p99_us = 0.0;
  std::uint64_t hedges = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t keys = 0;
};

Cell run_cell(double per_server_rate, std::uint32_t n_keys,
              const cluster::RedundancyPolicy& policy, std::uint64_t seed) {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.total_key_rate = 4.0 * per_server_rate;
  cfg.system.keys_per_request = n_keys;
  cfg.system.miss_ratio = 0.0;  // isolate the server stage
  cfg.redundancy = policy;
  cfg.common.warmup_time = 0.5 * bench::time_scale();
  cfg.common.measure_time = 4.0 * bench::time_scale();
  cfg.common.seed = seed;
  const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();
  return {p99(r.total_samples) * 1e6, r.hedges_fired, r.replicas_cancelled,
          r.keys_completed};
}

void sweep(std::uint32_t n_keys, std::uint64_t seed) {
  std::printf("\nburst degree: N = %u keys/request "
              "(per-server batch X ~ Binomial(N, p_j))\n", n_keys);
  std::printf("%8s | %9s | %9s | %9s | %9s | %7s\n", "l(Kps)", "d=1",
              "d=2 imm", "d=2 cncl", "d=2 hedge", "hedge%");
  std::printf("---------+-----------+-----------+-----------+-----------"
              "+--------\n");
  using cluster::HedgeTrigger;
  using cluster::LoserMode;
  using cluster::RedundancyPolicy;
  for (const double l : {8'000.0, 16'000.0, 24'000.0, 30'000.0, 36'000.0}) {
    const Cell d1 = run_cell(l, n_keys, RedundancyPolicy(), seed);
    const Cell imm = run_cell(l, n_keys, RedundancyPolicy(2), seed + 1);
    const Cell cancel = run_cell(
        l, n_keys,
        RedundancyPolicy(2, HedgeTrigger::kImmediate, LoserMode::kCancelOnWin),
        seed + 2);
    const Cell hedged =
        run_cell(l, n_keys, RedundancyPolicy::hedged(2), seed + 3);
    const double hedge_pct =
        hedged.keys == 0 ? 0.0
                         : 100.0 * static_cast<double>(hedged.hedges) /
                               static_cast<double>(hedged.keys);
    std::printf("%8.0f | %9.1f | %9.1f | %9.1f | %9.1f | %6.1f%%\n",
                l / 1000.0, d1.p99_us, imm.p99_us, cancel.p99_us,
                hedged.p99_us, hedge_pct);
    seed += 10;
  }
}

}  // namespace

int main() {
  bench::banner("Extension: hedging phase diagram",
                "(arXiv 1602.07978 modelled; no paper figure)",
                "P99 of T(N), event-driven fork-join: d=1 vs d=2 immediate "
                "vs cancel-on-win vs hedged (P95 deadline); "
                "xi=0.15, q=0.1, muS=80Kps, r=0 (server stage isolated)");

  sweep(/*n_keys=*/1, /*seed=*/7'100);
  sweep(/*n_keys=*/4, /*seed=*/7'900);

  std::printf(
      "\nReading: with N=1, d=2 lowers P99 while the doubled utilisation "
      "stays below the cliff and raises it after — the phase transition. "
      "Cancel-on-win pulls losers out of the queues and recovers most of "
      "the harmful-phase penalty; hedging fires backups for only the "
      "slowest few percent of keys, keeping the offered load near 1x, and "
      "beats immediate fan-out everywhere the extra load matters. With "
      "N=4 each request's own replica burst floods the cluster and the "
      "helpful phase shrinks toward lighter loads.\n");
  return 0;
}
