// bench_ext_large_keyspace — the large-keyspace fast path (DESIGN.md §4j):
// real-cache end-to-end trials swept over server count x keyspace size x
// KeyTable budget, with wall-clock, keys/s and resident-memory columns.
//
// Three things are measured at once:
//
//   * scale: the same engine stack at 4 → 128 ring servers and 10^6 → 10^7
//     keys, the regime where the pre-PR unordered_map index and the
//     unbounded KeyTable stopped being affordable;
//   * memory: peak RSS (getrusage ru_maxrss) per cell. ru_maxrss is a
//     process-wide high-water mark — it only ever rises — so the cells run
//     bounded-budget first and unbounded last, and the headline
//     bounded-table RSS claim is taken from the FIRST cell in the process,
//     before any unbounded run can inflate the peak;
//   * cost: the bounded table trades rebuild CPU for memory. The budget
//     column makes that trade visible instead of hiding it — a bounded
//     cell's wall-clock includes every eviction-driven chunk rebuild
//     (~2 ms each: 1024 rank-seeded RNG constructions).
//
// The HEADLINE line carries the claim scripts/bench_cache.sh records in
// BENCH_cache.json: a million-key real-cache trial with the KeyTable capped
// at 32 MiB completes within a stated 192 MiB peak-RSS budget (the process
// total: binary, Zipf sampler, four 4 MiB server caches, the bounded table
// and allocator slack — not just the table).
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/end_to_end.h"

namespace {

using namespace mclat;

/// Peak RSS of this process in MiB (ru_maxrss is KiB on Linux). Monotone:
/// a later cell can never report less than an earlier one.
double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

struct Cell {
  double wall_s = 0.0;
  double keys_per_s = 0.0;
  double miss_ratio = 0.0;
  std::uint64_t keys = 0;
};

/// One real-cache trial: ring mapper, 10 keys/request, per-server offered
/// rate held constant, measure window sized so every cell completes a
/// similar number of keys (the 10^7 cells keep the count small — most tail
/// accesses land in distinct cold chunks, each a ~2 ms lazy build).
Cell run_cell(std::size_t servers, std::uint64_t keyspace,
              std::size_t budget_bytes, double target_keys) {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.servers = static_cast<std::uint32_t>(servers);
  cfg.system.total_key_rate = static_cast<double>(servers) * 10'000.0;
  cfg.system.keys_per_request = 10;
  cfg.miss_mode = cluster::MissMode::kRealCache;
  cfg.mapper = cluster::MapperKind::kRing;
  cfg.keyspace_size = keyspace;
  cfg.common.cache_bytes_per_server = 4u << 20;
  cfg.common.keytable_budget_bytes = budget_bytes;
  cfg.common.measure_time = target_keys / cfg.system.total_key_rate;
  cfg.common.warmup_time = 0.1 * cfg.common.measure_time;
  cfg.common.seed = 909;

  const auto t0 = std::chrono::steady_clock::now();
  const cluster::EndToEndResult r = cluster::EndToEndSim(cfg).run();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  return {wall, static_cast<double>(r.keys_completed) / wall,
          r.measured_miss_ratio, r.keys_completed};
}

void print_row(std::size_t servers, std::uint64_t keyspace, double budget_mb,
               const Cell& c) {
  std::printf("%7zu | %8llu | %9.0f | %8.2f | %9.0f | %6.3f | %8.1f\n",
              servers, static_cast<unsigned long long>(keyspace), budget_mb,
              c.wall_s, c.keys_per_s, c.miss_ratio, peak_rss_mb());
  std::printf("ROW servers=%zu keyspace=%llu budget_mb=%.0f wall_s=%.6f "
              "keys=%llu keys_per_s=%.1f miss=%.4f rss_peak_mb=%.1f\n",
              servers, static_cast<unsigned long long>(keyspace), budget_mb,
              c.wall_s, static_cast<unsigned long long>(c.keys),
              c.keys_per_s, c.miss_ratio, peak_rss_mb());
}

}  // namespace

int main() {
  bench::banner("Extension: large-keyspace fast path",
                "(perf harness; no paper figure)",
                "real-cache trials over servers x keyspace x KeyTable "
                "budget; ring mapper, 10Kps/server, 4MiB caches");
  std::printf("MACHINE cores=%u\n", std::thread::hardware_concurrency());

  const double ts = bench::time_scale();
  // Headline first, while ru_maxrss still reflects only this cell: a
  // million-key trial under a 32 MiB table budget, claimed to fit a
  // 192 MiB process peak. (Full-length keys even in fast mode — a
  // quarter-length headline would weaken the claim, not speed it up much.)
  constexpr double kRssBudgetMb = 192.0;
  {
    const Cell c = run_cell(4, 1'000'000, 32u << 20, 50'000.0);
    std::printf("\nheadline: 10^6 keys, 4 servers, 32 MiB table budget — "
                "peak RSS %.1f MiB (budget %.0f MiB)\n",
                peak_rss_mb(), kRssBudgetMb);
    std::printf("HEADLINE keyspace=1000000 budget_mb=32 keys=%llu "
                "rss_peak_mb=%.1f rss_budget_mb=%.0f\n",
                static_cast<unsigned long long>(c.keys), peak_rss_mb(),
                kRssBudgetMb);
  }

  std::printf("%7s | %8s | %9s | %8s | %9s | %6s | %8s\n", "servers",
              "keyspace", "budget_mb", "wall(s)", "keys/s", "miss",
              "rssPk_mb");
  std::printf("--------+----------+-----------+----------+-----------+"
              "--------+---------\n");
  // Bounded cells before unbounded, so their RSS column is not polluted by
  // the unbounded 10^7 cells (which resident-build every touched chunk).
  const std::vector<std::size_t> budget_axis = {32u << 20, 0};
  for (const std::size_t budget : budget_axis) {
    for (const std::uint64_t keyspace : {1'000'000ull, 10'000'000ull}) {
      // Offered keys per cell: enough churn to be a real trial, small
      // enough that the 10^7 cells' cold-chunk builds stay tractable.
      const double target_keys = (keyspace > 1'000'000 ? 8'000.0 : 50'000.0) * ts;
      for (const std::size_t servers : {4, 32, 128}) {
        print_row(servers, keyspace,
                  static_cast<double>(budget) / (1u << 20),
                  run_cell(servers, keyspace, budget, target_keys));
      }
    }
  }

  std::printf(
      "\nReading: budget_mb=0 is the unbounded KeyTable (every touched "
      "chunk stays resident); bounded cells cap table metadata via CLOCK "
      "chunk eviction and pay cold-chunk rebuilds instead. rssPk_mb is the "
      "process-wide peak — monotone across rows by construction, so "
      "compare bounded rows (printed first) against the unbounded rows "
      "that follow, not the other way around.\n");
  return 0;
}
