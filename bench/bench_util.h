// bench_util.h — shared plumbing for the figure/table reproduction
// harnesses: environment-controlled scaling, paper-style table printing and
// the theory-vs-experiment row format used across every experiment binary.
//
// Every harness honours MCLAT_BENCH_FAST=1 (quarter-length simulations, for
// smoke runs) and prints absolute numbers so EXPERIMENTS.md can quote them.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/gixm1.h"
#include "stats/summary.h"

namespace mclat::bench {

/// Simulation-length multiplier: 1.0 normally, 0.25 under MCLAT_BENCH_FAST.
inline double time_scale() {
  const char* fast = std::getenv("MCLAT_BENCH_FAST");
  return (fast != nullptr && fast[0] == '1') ? 0.25 : 1.0;
}

/// Prints the experiment banner: id, paper anchor, parameter summary.
inline void banner(const std::string& id, const std::string& paper_ref,
                   const std::string& params) {
  std::printf("\n==============================================================\n");
  std::printf("%s  —  reproducing %s\n", id.c_str(), paper_ref.c_str());
  std::printf("%s\n", params.c_str());
  std::printf("==============================================================\n");
}

/// Microseconds with two significant digits of sub-µs precision.
inline std::string us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%8.1f", seconds * 1e6);
  return buf;
}

/// A theory interval rendered as "lo ~ hi".
inline std::string us_bounds(const core::Bounds& b) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%7.1f ~%7.1f", b.lower * 1e6,
                b.upper * 1e6);
  return buf;
}

/// "mean [lo, hi]" experiment cell in µs.
inline std::string us_ci(const stats::MeanCI& ci) {
  char buf[80];
  std::snprintf(buf, sizeof buf, "%7.1f [%7.1f,%7.1f]", ci.mean * 1e6,
                ci.lower() * 1e6, ci.upper() * 1e6);
  return buf;
}

/// One-line verdict helper: did the measured mean land inside (a stretched
/// copy of) the theory band?
inline const char* verdict(double measured, const core::Bounds& theory,
                           double stretch = 1.15) {
  const bool ok = measured >= theory.lower / stretch &&
                  measured <= theory.upper * stretch;
  return ok ? "ok" : "OUT";
}

}  // namespace mclat::bench
