// bench_fig13_keys_db — reproduces Fig. 13: E[T_D(N)] as N sweeps 1 → 10⁶,
// Facebook workload (r = 1 %, μ_D = 1 Kps). The paper: logarithmic growth
// to ~9–10 ms at N = 10⁶.
//
// Experiment side: for T_D(N) only the miss count matters, so each request
// draws K ~ Binomial(N, r) and takes the max of K simulated database
// sojourns — equivalent to full per-key assembly and fast enough for 10⁶.
#include <algorithm>
#include <cstdio>
#include <random>

#include "bench_util.h"
#include "cluster/workload_driven.h"
#include "core/db_stage.h"
#include "stats/welford.h"

int main() {
  using namespace mclat;

  const core::SystemConfig sys = core::SystemConfig::facebook();
  bench::banner("Figure 13", "ICDCS'17 Fig. 13 (keys per request, database)",
                "E[T_D(N)], N in [1, 1e6]; r=1%, muD=1Kps");

  cluster::WorkloadDrivenConfig cfg;
  cfg.system = sys;
  cfg.common.warmup_time = 1.0 * bench::time_scale();
  cfg.common.measure_time = 10.0 * bench::time_scale();
  cfg.common.seed = 13;
  const cluster::MeasurementPools pools =
      cluster::WorkloadDrivenSim(cfg).run();
  const core::DatabaseStage db(sys.miss_ratio, sys.db_service_rate);

  dist::Rng rng(131);
  std::printf("\n%9s | %12s | %12s | %-26s\n", "N", "eq.(23) us",
              "harmonic us", "experiment (us)");
  std::printf("----------+--------------+--------------+---------------------------\n");
  for (const std::uint64_t n : {1ull, 10ull, 100ull, 1'000ull, 10'000ull,
                                100'000ull, 1'000'000ull}) {
    stats::Welford w;
    const std::uint64_t reqs = n >= 100'000 ? 300 : 5'000;
    std::binomial_distribution<std::uint64_t> binom(n, sys.miss_ratio);
    for (std::uint64_t i = 0; i < reqs; ++i) {
      const std::uint64_t k = binom(rng.engine());
      double max_d = 0.0;
      for (std::uint64_t j = 0; j < k; ++j) {
        max_d = std::max(
            max_d, pools.db_sojourns[rng.uniform_index(
                       pools.db_sojourns.size())]);
      }
      w.add(max_d);
    }
    const auto ci = stats::mean_ci(w);
    std::printf("%9llu | %12.1f | %12.1f | %-26s\n",
                static_cast<unsigned long long>(n),
                db.expected_max(n) * 1e6, db.expected_max_harmonic(n) * 1e6,
                bench::us_ci(ci).c_str());
  }
  std::printf("\nShape check: Theta(log N) — the experiment tracks the "
              "harmonic-exact column (eq. 23 sits ~gamma/muD below it, as "
              "documented in EXPERIMENTS.md).\n");
  return 0;
}
