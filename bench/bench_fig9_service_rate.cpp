// bench_fig9_service_rate — reproduces Fig. 9 (pure theory): E[T_S(N)] for
// ξ ∈ {0, 0.6, 0.8} as μ_S sweeps 65 → 200 Kps at λ = 62.5 Kps. The paper:
// the cliff is delayed to μ_S ≈ 85 / 110 / 160 Kps as burstiness grows —
// the same utilisations as Fig. 8, seen from the service-rate side.
#include <cstdio>

#include "bench_util.h"
#include "core/theorem1.h"

int main() {
  using namespace mclat;

  bench::banner("Figure 9", "ICDCS'17 Fig. 9 (theory: service rate x burst)",
                "E[T_S(N)]; lambda=62.5Kps/server, q=0.1, N=150");

  const double xis[] = {0.0, 0.6, 0.8};
  std::printf("\n%9s", "muS(Kps)");
  for (const double xi : xis) std::printf(" | xi=%.1f lo~hi (us)   ", xi);
  std::printf("\n----------+----------------------+----------------------+----------------------\n");
  for (double mu = 65'000.0; mu <= 200'000.1; mu += 7'500.0) {
    std::printf("%9.1f", mu / 1000.0);
    for (const double xi : xis) {
      core::SystemConfig sys = core::SystemConfig::facebook();
      sys.service_rate = mu;
      sys.burst_xi = xi;
      const core::LatencyModel m(sys);
      if (!m.stable()) {
        std::printf(" | %20s", "(unstable)");
        continue;
      }
      std::printf(" | %20s",
                  bench::us_bounds(m.server_mean_bounds(150)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nShape check: xi=0 flattens out past ~85-90 Kps while "
              "xi=0.6 / 0.8 keep improving until ~110 / ~160 Kps — "
              "over-provisioning pays off only for bursty traffic.\n");
  return 0;
}
