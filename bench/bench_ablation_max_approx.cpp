// bench_ablation_max_approx — ablation A4: the cost of the max-statistics
// shortcut. Theorem 1 approximates E[max of N] by the N/(N+1) quantile
// (eq. 12) and E[max of K exponentials] by ln(K+1)/μ (eq. 21). For iid
// Exponential(rate) the exact value is H_N/rate = (ln N + γ + o(1))/rate,
// so the shortcut undershoots by ≈ γ/rate. This bench measures the error
// directly against Monte-Carlo maxima for both stages.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/db_stage.h"
#include "core/theorem1.h"
#include "dist/exponential.h"
#include "dist/rng.h"
#include "stats/welford.h"

int main() {
  using namespace mclat;

  bench::banner("Ablation A4", "quantile approximation of E[max]",
                "eq. (12)/(21) vs exact harmonic vs Monte-Carlo");

  // --- pure exponential maxima --------------------------------------------
  std::printf("\nE[max of N iid Exp(1)] — quantile ln(N+1) vs exact H_N vs MC\n");
  std::printf("%8s | %10s | %10s | %10s | %s\n", "N", "ln(N+1)", "H_N", "MC",
              "undershoot");
  std::printf("---------+------------+------------+------------+-----------\n");
  dist::Rng rng(4);
  const dist::Exponential unit(1.0);
  for (const std::uint64_t n : {2ull, 10ull, 100ull, 1000ull}) {
    stats::Welford w;
    const int reps = n > 100 ? 20'000 : 100'000;
    for (int i = 0; i < reps; ++i) {
      double mx = 0.0;
      for (std::uint64_t j = 0; j < n; ++j) {
        mx = std::max(mx, unit.sample(rng));
      }
      w.add(mx);
    }
    double harmonic = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) harmonic += 1.0 / static_cast<double>(k);
    const double quantile = std::log(static_cast<double>(n) + 1.0);
    std::printf("%8llu | %10.4f | %10.4f | %10.4f | %9.4f\n",
                static_cast<unsigned long long>(n), quantile, harmonic,
                w.mean(), w.mean() - quantile);
  }
  std::printf("(undershoot converges to Euler-Mascheroni gamma = 0.5772)\n");

  // --- the database stage -------------------------------------------------
  std::printf("\nE[T_D(N)] at r=1%%, muD=1Kps — eq.(23) vs binomial-harmonic\n");
  std::printf("%8s | %12s | %12s | %10s\n", "N", "eq.(23) us", "harmonic us",
              "gap us");
  std::printf("---------+--------------+--------------+----------\n");
  const core::DatabaseStage db(0.01, 1000.0);
  for (const std::uint64_t n : {10ull, 150ull, 1000ull, 10'000ull}) {
    const double a = db.expected_max(n) * 1e6;
    const double h = db.expected_max_harmonic(n) * 1e6;
    std::printf("%8llu | %12.1f | %12.1f | %9.1f\n",
                static_cast<unsigned long long>(n), a, h, h - a);
  }

  // --- the server stage ---------------------------------------------------
  std::printf("\nE[T_S(N)] Facebook workload — eq.(14) band vs band + gamma/eta\n");
  const core::LatencyModel m(core::SystemConfig::facebook());
  const double eta = m.server_stage().server(0).eta();
  for (const std::uint64_t n : {10ull, 150ull, 1000ull}) {
    const core::Bounds b = m.server_mean_bounds(n);
    std::printf("N=%6llu: %s us, + gamma/eta -> upper %.1f us\n",
                static_cast<unsigned long long>(n),
                bench::us_bounds(b).c_str(),
                (b.upper + 0.5772 / eta) * 1e6);
  }
  std::printf("\nReading: simulations sit ~gamma/rate above the paper's "
              "formulas everywhere a maximum is approximated by a quantile "
              "— a systematic, predictable offset, not noise. The shapes "
              "(log-laws, cliffs, orderings) are unaffected.\n");
  return 0;
}
