// bench_fig5_concurrency — reproduces Fig. 5: E[T_S(N)] as the concurrency
// probability q sweeps 0 → 0.5 (Facebook workload otherwise). The paper
// reports linear growth in 1/(1-q), from ~350 µs to ~650 µs.
#include "bench_sweep.h"

int main() {
  using namespace mclat;

  bench::banner("Figure 5", "ICDCS'17 Fig. 5 (concurrency probability)",
                "q in [0, 0.5]; lambda=62.5Kps/server, xi=0.15, N=150");
  const bench::SweepOptions opt = bench::sweep_options_from_env();
  bench::print_server_header("q");
  std::uint64_t seed = 50;
  for (double q = 0.0; q <= 0.501; q += 0.05) {
    core::SystemConfig sys = core::SystemConfig::facebook();
    sys.concurrency_q = q;
    const auto pt = bench::run_server_point(sys, seed++, 12.0, 20'000, opt);
    bench::print_server_row(q, "%8.2f", pt);
  }
  std::printf("\nShape check: E[T_S(N)] = Theta(1/(1-q)) — the q=0.5 row "
              "should be ~1.8x the q=0 row.\n");
  return 0;
}
