// bench_ext_db_load — extension experiment: when is the paper's eq.-19
// "database is greatly offloaded" assumption safe?
//
// We sweep the database utilisation ρ_D = r·Λ/μ_D by varying μ_D, and
// compare three T_D(N) estimates against a *real single-server M/M/1*
// simulation of the miss stream:
//   * the paper's eq. (23) (ρ ignored),
//   * our load-aware stage (μ_D → (1-ρ_D)μ_D),
//   * simulation ground truth.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/db_stage.h"
#include "core/mmc.h"
#include "dist/empirical.h"
#include "dist/exponential.h"
#include "dist/rng.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "stats/welford.h"

namespace {

// Simulates the single-server database under Poisson miss arrivals and
// returns per-fetch sojourns.
mclat::dist::Empirical simulate_db(double miss_rate, double mu_d,
                                   double horizon, std::uint64_t seed) {
  using namespace mclat;
  sim::Simulator s;
  std::vector<double> sojourns;
  sim::ServiceStation db(s, std::make_unique<dist::Exponential>(mu_d),
                         dist::Rng(seed), [&](const sim::Departure& d) {
                           if (d.arrival > horizon * 0.1) {
                             sojourns.push_back(d.sojourn_time());
                           }
                         });
  dist::Rng arr(seed ^ 0xdbull);
  std::uint64_t id = 0;
  std::function<void()> arrive = [&] {
    db.arrive(id++);
    s.schedule_in(arr.exponential(miss_rate), arrive);
  };
  s.schedule_in(arr.exponential(miss_rate), arrive);
  s.run_until(horizon);
  return dist::Empirical(std::move(sojourns));
}

}  // namespace

int main() {
  using namespace mclat;

  bench::banner("Extension: database load",
                "(eq. 19's rho << 1 assumption, stress-tested)",
                "T_D(N) at N=150, r=1%, Lambda=250Kps -> miss rate 2.5Kps; "
                "muD swept so rho_D covers [0.1, 0.9]");

  const double miss_rate = 2'500.0;  // r·Λ of the §5.1 testbed
  const std::uint64_t n = 150;
  std::printf("\n%7s | %8s | %12s | %12s | %-24s\n", "rho_D", "muD(/s)",
              "eq.23 (us)", "load-aware", "simulated E[T_D(N)] (us)");
  std::printf("--------+----------+--------------+--------------+--------------------------\n");
  std::uint64_t seed = 1;
  for (const double rho : {0.1, 0.3, 0.5, 0.7, 0.8, 0.9}) {
    const double mu_d = miss_rate / rho;
    const core::DatabaseStage naive(0.01, mu_d);
    const core::DatabaseStage aware(0.01, mu_d, rho);
    // Ground truth: per-request max over K ~ Binom(150, 0.01) simulated
    // M/M/1 sojourns.
    const double horizon = 40.0 * bench::time_scale() / (1.0 - rho);
    const dist::Empirical pool =
        simulate_db(miss_rate, mu_d, horizon, seed++);
    dist::Rng rng(seed ^ 0x5eedull);
    stats::Welford w;
    for (int i = 0; i < 20'000; ++i) {
      double mx = 0.0;
      for (std::uint64_t k = 0; k < n; ++k) {
        if (rng.bernoulli(0.01)) {
          mx = std::max(mx, pool.sorted()[rng.uniform_index(pool.size())]);
        }
      }
      w.add(mx);
    }
    std::printf("%7.2f | %8.0f | %12.1f | %12.1f | %-24s\n", rho, mu_d,
                naive.expected_max(n) * 1e6, aware.expected_max(n) * 1e6,
                bench::us_ci(stats::mean_ci(w)).c_str());
  }
  // ---- the provisioning answer: how many shards make eq. (19) true? -----
  std::printf("\nSharding the backend (M/M/c pool at the same total miss "
              "stream, muD = 1 Kps per shard):\n");
  std::printf("%7s | %8s | %10s | %14s\n", "shards", "rho_D", "P{wait}",
              "E[sojourn] us");
  for (unsigned c = 3; c <= 8; ++c) {
    const core::MmcQueue pool(c, miss_rate, 1'000.0);
    std::printf("%7u | %7.1f%% | %9.1f%% | %14.1f\n", c,
                100.0 * pool.utilization(), 100.0 * pool.p_wait(),
                pool.mean_sojourn() * 1e6);
  }
  std::printf("shards_for_offloaded_db(2.5Kps, 1Kps, 10%%) = %u\n",
              core::shards_for_offloaded_db(miss_rate, 1'000.0, 0.10));

  std::printf("\nReading: eq. (23) is fine below rho_D ~ 0.3 (its error "
              "hides inside the max-statistics offset) but underestimates "
              "by 2-10x as the database saturates; the (1-rho)muD "
              "substitution tracks the simulation across the whole sweep "
              "(same gamma-offset as every mean in this repo). Note the "
              "paper's own 5.1 parameters imply rho_D = 2.5 on a single "
              "database server — eq. 19 implicitly assumes a sharded/"
              "replicated backend.\n");
  return 0;
}
