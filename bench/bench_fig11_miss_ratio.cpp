// bench_fig11_miss_ratio — reproduces Fig. 11 (both panels): E[T_D(N)] as
// the cache miss ratio r sweeps 1e-4 → 1e-1, for small N (1, 4, 10; left
// panel, linear-in-r regime) and large N (10², 10³, 10⁴; right panel,
// logarithmic regime).
//
// Experiment side: the database pool is independent of r in the eq.-19
// regime (misses see an unloaded exp(μ_D) stage), so one simulated pool is
// assembled under each r — exactly how the paper varies r on a fixed
// testbed.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/workload_driven.h"
#include "core/db_stage.h"

int main() {
  using namespace mclat;

  bench::banner("Figure 11", "ICDCS'17 Fig. 11 (cache miss ratio)",
                "E[T_D(N)] vs r in [1e-4, 1e-1]; muD=1Kps");

  // One shared DB pool.
  cluster::WorkloadDrivenConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.common.warmup_time = 1.0 * bench::time_scale();
  cfg.common.measure_time = 10.0 * bench::time_scale();
  cfg.common.seed = 11;
  const cluster::MeasurementPools pools =
      cluster::WorkloadDrivenSim(cfg).run();
  dist::Rng rng(111);

  const auto run_panel = [&](const std::vector<std::uint64_t>& ns,
                             const char* panel) {
    std::printf("\n--- %s ---\n", panel);
    std::printf("%9s", "r");
    for (const auto n : ns) std::printf(" |    N=%-6llu th/exp (us)",
                                        static_cast<unsigned long long>(n));
    std::printf("\n");
    for (const double r : {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}) {
      std::printf("%9.4f", r);
      for (const auto n : ns) {
        const core::DatabaseStage db(r, cfg.system.db_service_rate);
        core::SystemConfig sys = cfg.system;
        sys.miss_ratio = r;
        sys.keys_per_request = static_cast<std::uint32_t>(n);
        const std::uint64_t reqs = n > 1000 ? 2'000 : 10'000;
        const auto assembled =
            cluster::assemble_requests(pools, sys, reqs, n, rng);
        std::printf(" | %9.1f /%9.1f", db.expected_max(n) * 1e6,
                    assembled.database_ci().mean * 1e6);
      }
      std::printf("\n");
    }
  };

  run_panel({1, 4, 10}, "small N: E[T_D(N)] = Theta(r), linear panel");
  run_panel({100, 1000, 10'000},
            "large N: E[T_D(N)] = Theta(log r), log panel");

  std::printf("\nShape check: left panel rows scale ~linearly with r; right "
              "panel gains only ~ln(10) per decade of r — the eq. (25) "
              "dichotomy behind 5.3's recommendation.\n");
  return 0;
}
