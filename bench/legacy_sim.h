// legacy_sim.h — the pre-rewrite discrete-event kernel, kept verbatim as the
// baseline reference for bench_micro_sim's baseline-vs-after snapshot
// (BENCH_kernel.json). Measuring both kernels interleaved in one process is
// the only comparison that survives noisy CI machines.
//
// This is NOT production code: the simulators all run sim::Simulator. Do not
// grow features here.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/recorder.h"
#include "sim/station.h"  // sim::Departure (plain data, unchanged from seed)
#include "stats/welford.h"

namespace mclat::bench::legacy {

using Time = double;
using EventId = std::uint64_t;

/// The seed kernel: binary std::priority_queue calendar, callbacks in an
/// unordered_map of std::function, cancellations in an unordered_set.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  EventId schedule_at(Time t, Callback fn) {
    if (t < now_) {
      throw std::invalid_argument("legacy schedule_at: time in the past");
    }
    const EventId id = next_id_++;
    heap_.push(Entry{t, next_seq_++, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }

  EventId schedule_in(Time dt, Callback fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  void cancel(EventId id) {
    if (callbacks_.erase(id) > 0) cancelled_.insert(id);
  }

  bool step() {
    while (!heap_.empty()) {
      const Entry e = heap_.top();
      heap_.pop();
      const auto c = cancelled_.find(e.id);
      if (c != cancelled_.end()) {
        cancelled_.erase(c);
        continue;
      }
      const auto it = callbacks_.find(e.id);
      if (it == callbacks_.end()) continue;
      now_ = e.at;
      Callback fn = std::move(it->second);
      callbacks_.erase(it);
      ++executed_;
      fn();
      return true;
    }
    return false;
  }

  void run() {
    while (step()) {
    }
  }

  void run_until(Time t) {
    while (!heap_.empty()) {
      const Entry e = heap_.top();
      if (cancelled_.contains(e.id)) {
        heap_.pop();
        cancelled_.erase(e.id);
        continue;
      }
      if (e.at > t) break;
      step();
    }
    if (now_ < t) now_ = t;
  }

  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

/// The seed Rng: std::mt19937_64 drawn through std::generate_canonical,
/// exactly as src/dist/rng.h read before the rewrite.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  [[nodiscard]] double uniform() {
    return std::generate_canonical<double, 53>(engine_);
  }
  [[nodiscard]] double uniform_pos() { return 1.0 - uniform(); }
  [[nodiscard]] double exponential(double rate) {
    return -std::log(uniform_pos()) / rate;
  }

 private:
  std::mt19937_64 engine_;
};

/// Minimal virtual service-distribution hierarchy, mirroring the seed's
/// dist::Distribution::sample dispatch cost.
class Distribution {
 public:
  virtual ~Distribution() = default;
  [[nodiscard]] virtual double sample(Rng& rng) const = 0;
};

class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate) : rate_(rate) {}
  [[nodiscard]] double sample(Rng& rng) const override {
    return rng.exponential(rate_);
  }

 private:
  double rate_;
};

/// The seed ServiceStation, verbatim modulo types: virtual sampling, a
/// std::function departure handler, and std::function scheduling on the
/// legacy calendar. Welford/observability accounting is the production code
/// (unchanged since the seed), so the twin's per-key work matches the
/// pre-rewrite station exactly.
class ServiceStation {
 public:
  using Departure = sim::Departure;
  using DepartureHandler = std::function<void(const Departure&)>;

  ServiceStation(Simulator& sim, std::unique_ptr<Distribution> service,
                 Rng rng, DepartureHandler on_departure)
      : sim_(sim), service_(std::move(service)), rng_(rng),
        on_departure_(std::move(on_departure)), created_at_(sim.now()) {}

  void arrive(std::uint64_t job_id) {
    found_.add(static_cast<double>(in_system_));
    account_population(sim_.now());
    ++in_system_;
    queue_.push_back(Pending{job_id, sim_.now()});
    if (!busy_) begin_service();
  }

  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

 private:
  struct Pending {
    std::uint64_t job_id;
    double arrival;
  };

  void account_population(Time now) noexcept {
    population_integral_ +=
        static_cast<double>(in_system_) * (now - last_change_);
    last_change_ = now;
  }

  void begin_service() {
    const Pending job = queue_.front();
    queue_.pop_front();
    busy_ = true;
    busy_since_ = sim_.now();
    const Time start = sim_.now();
    const double duration = service_->sample(rng_);
    sim_.schedule_in(duration, [this, job, start] {
      busy_ = false;
      busy_accum_ += sim_.now() - busy_since_;
      account_population(sim_.now());
      --in_system_;
      ++completed_;
      Departure d;
      d.job_id = job.job_id;
      d.arrival = job.arrival;
      d.service_start = start;
      d.departure = sim_.now();
      waiting_.add(d.waiting_time());
      sojourn_.add(d.sojourn_time());
      if (d.arrival >= obs_from_) {
        obs::observe(obs_wait_, obs::to_us(d.waiting_time()));
        obs::observe(obs_service_, obs::to_us(d.departure - d.service_start));
      }
      if (!queue_.empty()) begin_service();
      on_departure_(d);
    });
  }

  Simulator& sim_;
  std::unique_ptr<Distribution> service_;
  Rng rng_;
  DepartureHandler on_departure_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  Time created_at_ = 0.0;
  Time busy_accum_ = 0.0;
  Time busy_since_ = 0.0;
  std::uint64_t completed_ = 0;
  stats::Welford waiting_;
  stats::Welford sojourn_;
  stats::Welford found_;
  obs::LatencyStat* obs_wait_ = nullptr;
  obs::LatencyStat* obs_service_ = nullptr;
  Time obs_from_ = 0.0;
  std::size_t in_system_ = 0;
  Time last_change_ = 0.0;
  double population_integral_ = 0.0;
};

}  // namespace mclat::bench::legacy
