// bench_ext_ring_churn — mid-run membership churn at cluster scale
// (DESIGN.md §4k; no paper figure — the paper's cluster is static).
//
// One cold join and one abrupt leave are played against a 128-server
// consistent-hashing ring with real per-server LRU stores, and three things
// are read off the per-epoch measurement windows:
//
//   * steady state: the post-rebalance miss ratio vs the Ji/Quan/Tan
//     asymptotic prediction (arXiv:1801.02436) — one LRU cache of the
//     aggregate measured capacity, evaluated with the Che approximation
//     (core/lru_asymptotics.h). The comparison is self-calibrating: the
//     theory is evaluated at the cluster's own end-of-run resident item
//     count, so value-size and slab-overhead assumptions never enter.
//   * transient: the per-epoch P99 key latency — the post-event window
//     carries the refill storm (cold joiner) or the failover bulge
//     (abrupt leave) that the asymptotics ignore.
//   * remap cost: the fraction of the keyspace whose server assignment
//     actually moved (the epoch-validated KeyTable counts exactly the
//     ranks it remapped — ~1/M per event, never a rebuild).
//
// Determinism rides along: every scenario is run at shard_jobs=1 and 4 and
// the harness exits nonzero if any epoch's counters drift bit-for-bit
// (churn is K-invariant by construction). The MACHINE line reports core
// count so scripts/bench_churn.sh can gate wall-clock-sensitive claims the
// way bench_shard.sh does — the model numbers themselves are exact and
// need no cores.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/end_to_end.h"
#include "cluster/membership.h"
#include "core/lru_asymptotics.h"
#include "workload/keyspace.h"

namespace {

using namespace mclat;

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

constexpr std::uint64_t kKeyspace = 100'000;
constexpr double kZipf = 0.99;
constexpr std::size_t kServers = 128;

cluster::EndToEndConfig churn_config(const std::string& spec,
                                     std::size_t shard_jobs) {
  cluster::EndToEndConfig cfg;
  cfg.system = core::SystemConfig::facebook();
  cfg.system.servers = kServers;
  cfg.system.total_key_rate = static_cast<double>(kServers) * 2'000.0;
  cfg.system.keys_per_request = 8;
  cfg.system.network_latency = 1e-3;
  cfg.miss_mode = cluster::MissMode::kRealCache;
  cfg.mapper = cluster::MapperKind::kRing;
  cfg.keyspace_size = kKeyspace;
  cfg.zipf_exponent = kZipf;
  cfg.common.cache_bytes_per_server = 8u << 10;
  // Constant 1-byte values: one slab class, so the per-server stores are
  // honest LRUs and the aggregate-capacity theory applies cleanly (see
  // tests/cluster/test_churn_model.cpp for the full rationale).
  cfg.common.max_value_bytes = 1;
  cfg.common.warmup_time = 0.3;
  cfg.common.measure_time = 2.7 * bench::time_scale();
  cfg.common.seed = 71;
  cfg.common.shard_jobs = shard_jobs;
  cfg.common.churn = cluster::MembershipSchedule::parse(spec);
  return cfg;
}

/// Runs one scenario at K=1 and K=4, checks bit-invariance, prints the
/// epoch table plus the theory comparison. Returns false on K drift.
bool run_scenario(const char* name, const std::string& spec,
                  const std::vector<double>& pmf) {
  const cluster::EndToEndResult r =
      cluster::EndToEndSim(churn_config(spec, 1)).run();
  const cluster::EndToEndResult r4 =
      cluster::EndToEndSim(churn_config(spec, 4)).run();

  bool invariant = same_bits(r.total.mean, r4.total.mean) &&
                   r.keys_completed == r4.keys_completed &&
                   r.churn.refill_storm_bytes == r4.churn.refill_storm_bytes;
  for (std::size_t e = 0; invariant && e < r.churn.epochs.size(); ++e) {
    invariant = r.churn.epochs[e].keys == r4.churn.epochs[e].keys &&
                r.churn.epochs[e].misses == r4.churn.epochs[e].misses;
  }

  const cluster::ChurnStats& cs = r.churn;
  std::printf("\nscenario: %s (--churn \"%s\")\n", name, spec.c_str());
  std::printf("%6s | %8s | %10s | %8s | %10s\n", "epoch", "start(s)", "keys",
              "miss", "p99(us)");
  std::printf("-------+----------+------------+----------+-----------\n");
  double peak_p99 = 0.0;
  for (const cluster::ChurnEpochWindow& w : cs.epochs) {
    std::printf("%6llu | %8.2f | %10llu | %8.4f | %10.1f\n",
                static_cast<unsigned long long>(w.epoch), w.start_time,
                static_cast<unsigned long long>(w.keys), w.miss_ratio,
                w.p99_key_latency_us);
    if (w.p99_key_latency_us > peak_p99) peak_p99 = w.p99_key_latency_us;
    std::printf("ROW scenario=%s epoch=%llu start=%.4f keys=%llu "
                "misses=%llu miss=%.6f p99_us=%.3f\n",
                name, static_cast<unsigned long long>(w.epoch), w.start_time,
                static_cast<unsigned long long>(w.keys),
                static_cast<unsigned long long>(w.misses), w.miss_ratio,
                w.p99_key_latency_us);
  }

  const double measured = cs.epochs.back().miss_ratio;
  const double predicted = core::lru_miss_ratio_che(
      pmf, static_cast<double>(cs.resident_items_end));
  const double rel_err = (measured - predicted) / predicted;
  const double remap_fraction = static_cast<double>(cs.ranks_remapped) /
                                static_cast<double>(kKeyspace);
  std::printf("steady state: measured miss %.4f vs Che/Ji-Quan-Tan %.4f "
              "(%+.1f%%) at %llu aggregate items, %llu live servers\n",
              measured, predicted, 100.0 * rel_err,
              static_cast<unsigned long long>(cs.resident_items_end),
              static_cast<unsigned long long>(cs.live_servers_end));
  std::printf("transient: peak epoch P99 %.1fus (base %.1fus); refill storm "
              "%llu bytes; remapped %.2f%% of the keyspace; failovers %llu\n",
              peak_p99, cs.epochs.front().p99_key_latency_us,
              static_cast<unsigned long long>(cs.refill_storm_bytes),
              100.0 * remap_fraction,
              static_cast<unsigned long long>(cs.failovers));
  std::printf("SUMMARY scenario=%s measured_miss=%.6f predicted_miss=%.6f "
              "rel_err=%.6f remap_fraction=%.6f refill_storm_bytes=%llu "
              "peak_p99_us=%.3f base_p99_us=%.3f failovers=%llu "
              "live_servers=%llu resident_items=%llu shard_invariant=%d\n",
              name, measured, predicted, rel_err, remap_fraction,
              static_cast<unsigned long long>(cs.refill_storm_bytes),
              peak_p99, cs.epochs.front().p99_key_latency_us,
              static_cast<unsigned long long>(cs.failovers),
              static_cast<unsigned long long>(cs.live_servers_end),
              static_cast<unsigned long long>(cs.resident_items_end),
              invariant ? 1 : 0);
  if (!invariant) {
    std::printf("FAIL: churn run is not shard-count invariant (K=1 vs "
                "K=4 drift)\n");
  }
  return invariant;
}

}  // namespace

int main() {
  bench::banner("Extension: mid-run ring churn",
                "(extension; validated against arXiv:1801.02436)",
                "128 ring servers, real 8KiB LRU stores, Zipf(0.99) over "
                "100k keys, 2Kps/server; one cold join / one abrupt leave");
  std::printf("MACHINE cores=%u\n", std::thread::hardware_concurrency());

  const workload::KeySpace keyspace(kKeyspace, kZipf);
  std::vector<double> pmf(kKeyspace);
  for (std::uint64_t k = 0; k < kKeyspace; ++k) {
    pmf[k] = keyspace.popularity().pmf(k);
  }

  bool ok = run_scenario("join", "join@0.4", pmf);
  ok = run_scenario("leave", "leave:7@0.4", pmf) && ok;

  if (!ok) return 1;
  std::printf(
      "\nReading: after a membership event the ring rebalances ~1/M of the "
      "keyspace; the post-event window shows the transient (refill storm / "
      "failover bulge) and then settles onto the miss ratio of ONE LRU of "
      "the aggregate capacity — the Ji/Quan/Tan equivalence the churn test "
      "tier pins. Epoch counters are bit-identical across --shard-jobs.\n");
  return 0;
}
