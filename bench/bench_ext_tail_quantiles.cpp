// bench_ext_tail_quantiles — extension experiment (beyond the paper): the
// paper reports mean latencies and remarks that the 99.9th percentile "only
// presents the bad case"; production SLOs, however, are quantile-based.
// This harness validates our tail extension — exact T_D(N) quantiles and
// eq.-9-based T_S(N) quantile bounds — against the simulated testbed at
// p50/p90/p99/p999.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "cluster/workload_driven.h"
#include "core/theorem1.h"
#include "dist/empirical.h"

int main() {
  using namespace mclat;

  const core::SystemConfig sys = core::SystemConfig::facebook();
  bench::banner("Extension: tail quantiles",
                "(no paper counterpart — SLO-style percentiles)",
                "Facebook workload, N=150; theory vs simulated testbed");

  const core::LatencyModel model(sys);

  cluster::WorkloadDrivenConfig cfg;
  cfg.system = sys;
  cfg.common.warmup_time = 2.0 * bench::time_scale();
  cfg.common.measure_time = 25.0 * bench::time_scale();
  cfg.common.seed = 5150;
  const cluster::MeasurementPools pools =
      cluster::WorkloadDrivenSim(cfg).run();
  dist::Rng rng(51);
  const cluster::AssembledRequests reqs = cluster::assemble_requests(
      pools, sys, static_cast<std::uint64_t>(60'000 * bench::time_scale()) +
                      5'000,
      150, rng);
  const dist::Empirical server_dist(reqs.server);
  const dist::Empirical db_dist(reqs.database);
  const dist::Empirical total_dist(reqs.total);

  std::printf("\n--- T_S(N) quantiles (us) ---\n");
  std::printf("%8s | %-20s | %10s | %s\n", "k", "theory lo~hi",
              "simulated", "band");
  for (const double k : {0.5, 0.9, 0.99, 0.999}) {
    const core::Bounds b = model.server_stage().max_quantile_bounds(150, k);
    const double meas = server_dist.quantile(k);
    std::printf("%8.3f | %20s | %10.1f | %s\n", k,
                bench::us_bounds(b).c_str(), meas * 1e6,
                bench::verdict(meas, b, 1.10));
  }

  std::printf("\n--- T_D(N) quantiles (us, exact closed form) ---\n");
  std::printf("%8s | %12s | %10s\n", "k", "theory", "simulated");
  for (const double k : {0.5, 0.9, 0.99, 0.999}) {
    std::printf("%8.3f | %12.1f | %10.1f\n", k,
                model.db_stage().max_quantile(150, k) * 1e6,
                db_dist.quantile(k) * 1e6);
  }

  std::printf("\n--- T(N) envelope ---\n");
  std::printf("%8s | %-20s | %10s\n", "k", "envelope lo~hi", "simulated");
  for (const double k : {0.5, 0.9, 0.99, 0.999}) {
    const core::TailEstimate t = model.tail(150, k);
    std::printf("%8.3f | %20s | %10.1f\n", k,
                bench::us_bounds(t.total).c_str(),
                total_dist.quantile(k) * 1e6);
  }

  std::printf("\nReading: T_D quantiles are exact (closed-form CDF "
              "(1-r·e^{-muD t})^N); T_S quantiles land inside the eq.-9 "
              "band *without* the gamma offset that affects means — "
              "quantiles are where the paper's machinery is tightest. The "
              "T(N) union-bound envelope is conservative at high k, as "
              "envelopes must be.\n");
  return 0;
}
