// bench_micro_core — google-benchmark microbenchmarks of the analytical
// hot paths: Laplace transforms, the δ-solver, quantile evaluation, full
// Theorem-1 estimation and the cliff solver. These bound how cheap it is to
// embed the model in a control loop (e.g. a load balancer re-evaluating
// cliff headroom every second).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/cliff.h"
#include "core/delta.h"
#include "core/theorem1.h"
#include "dist/discrete.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "dist/rng.h"
#include "legacy_workload.h"

namespace {

using namespace mclat;

void BM_LaplaceExponentialClosedForm(benchmark::State& state) {
  const dist::Exponential e(80'000.0);
  double s = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.laplace(s));
    s += 1.0;
  }
}
BENCHMARK(BM_LaplaceExponentialClosedForm);

void BM_LaplaceGeneralizedParetoNumeric(benchmark::State& state) {
  const auto gp = dist::GeneralizedPareto::with_mean(0.15, 1.78e-5);
  double s = 10'000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.laplace(s));
    s += 1.0;
  }
}
BENCHMARK(BM_LaplaceGeneralizedParetoNumeric);

void BM_DeltaSolvePoisson(benchmark::State& state) {
  const dist::Exponential gap(0.9 * 62'500.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_delta(gap, 0.1, 80'000.0));
  }
}
BENCHMARK(BM_DeltaSolvePoisson);

void BM_DeltaSolveGeneralizedPareto(benchmark::State& state) {
  const auto gap = dist::GeneralizedPareto::with_mean(0.15, 1.78e-5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_delta(gap, 0.1, 80'000.0));
  }
}
BENCHMARK(BM_DeltaSolveGeneralizedPareto);

void BM_GixM1QuantileBounds(benchmark::State& state) {
  const auto gap = dist::GeneralizedPareto::with_mean(0.15, 1.78e-5);
  const core::GixM1Queue q(gap, 0.1, 80'000.0);
  double k = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.sojourn_quantile_bounds(k));
    k = k >= 0.99 ? 0.01 : k + 0.001;
  }
}
BENCHMARK(BM_GixM1QuantileBounds);

void BM_LatencyModelConstruct(benchmark::State& state) {
  const core::SystemConfig cfg = core::SystemConfig::facebook();
  for (auto _ : state) {
    const core::LatencyModel m(cfg);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_LatencyModelConstruct);

void BM_LatencyModelEstimate(benchmark::State& state) {
  const core::LatencyModel m(core::SystemConfig::facebook());
  std::uint64_t n = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.estimate(n));
    n = n >= 100'000 ? 1 : n * 2;
  }
}
BENCHMARK(BM_LatencyModelEstimate);

// ---- categorical sampling: alias table vs classical CDF search ----------
// Every key of every assembled request draws its server from a Discrete;
// these pairs isolate that draw. Both samplers consume exactly one uniform
// per draw from the same Rng, so the pair differs only in the inversion:
// O(1) alias lookup vs O(log K) binary search over the cumulative table.
// The *_LegacyWorkload twin is the pre-optimisation reference measured in
// the same process (see legacy_workload.h).

std::vector<double> zipfish_weights(std::size_t k) {
  std::vector<double> w(k);
  for (std::size_t i = 0; i < k; ++i) w[i] = 1.0 / static_cast<double>(i + 1);
  return w;
}

void BM_DiscreteSampleK16(benchmark::State& state) {
  const dist::Discrete d(zipfish_weights(16));
  dist::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiscreteSampleK16);

void BM_DiscreteSampleK16_LegacyWorkload(benchmark::State& state) {
  const bench::legacy_workload::CdfDiscrete d(zipfish_weights(16));
  dist::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiscreteSampleK16_LegacyWorkload);

void BM_DiscreteSampleK1024(benchmark::State& state) {
  const dist::Discrete d(zipfish_weights(1024));
  dist::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiscreteSampleK1024);

void BM_DiscreteSampleK1024_LegacyWorkload(benchmark::State& state) {
  const bench::legacy_workload::CdfDiscrete d(zipfish_weights(1024));
  dist::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiscreteSampleK1024_LegacyWorkload);

void BM_CliffUtilization(benchmark::State& state) {
  const core::CliffAnalyzer c;
  double xi = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.cliff_utilization(xi));
    xi = xi >= 0.9 ? 0.0 : xi + 0.05;
  }
}
BENCHMARK(BM_CliffUtilization);

}  // namespace

BENCHMARK_MAIN();
