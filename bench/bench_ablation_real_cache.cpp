// bench_ablation_real_cache — ablation A2: does the model's Bernoulli-miss
// abstraction distort the database stage? We run the end-to-end cluster
// twice — once with iid coin-flip misses at ratio r, once with a real
// slab/LRU cache whose *emergent* miss ratio is measured — then re-run the
// Bernoulli mode at that measured ratio and compare latency breakdowns.
#include <cstdio>

#include "bench_util.h"
#include "cluster/end_to_end.h"

int main() {
  using namespace mclat;

  bench::banner("Ablation A2", "Bernoulli vs real-LRU-cache miss path",
                "end-to-end cluster, matched miss ratios");

  cluster::EndToEndConfig base;
  base.system = core::SystemConfig::facebook();
  base.system.total_key_rate = 4.0 * 40'000.0;  // ~50 % utilisation
  base.system.keys_per_request = 100;
  base.common.warmup_time = 1.0 * bench::time_scale();
  base.common.measure_time = 8.0 * bench::time_scale();
  base.common.seed = 7;

  // 1. Real cache: Zipf keys over a finite keyspace, 4 MiB per server.
  cluster::EndToEndConfig real = base;
  real.miss_mode = cluster::MissMode::kRealCache;
  real.mapper = cluster::MapperKind::kRing;
  real.keyspace_size = 100'000;
  real.zipf_exponent = 1.0;
  real.common.cache_bytes_per_server = 4u << 20;
  const cluster::EndToEndResult rr = cluster::EndToEndSim(real).run();
  std::printf("\nreal cache: emergent miss ratio = %.4f\n",
              rr.measured_miss_ratio);

  // 2. Bernoulli at the emergent ratio.
  cluster::EndToEndConfig bern = base;
  bern.system.miss_ratio = rr.measured_miss_ratio;
  const cluster::EndToEndResult rb = cluster::EndToEndSim(bern).run();

  std::printf("\n%-10s | %-26s | %-26s\n", "component", "real cache (us)",
              "bernoulli @same r (us)");
  std::printf("-----------+----------------------------+---------------------------\n");
  std::printf("%-10s | %-26s | %-26s\n", "T_N(N)",
              bench::us_ci(rr.network).c_str(), bench::us_ci(rb.network).c_str());
  std::printf("%-10s | %-26s | %-26s\n", "T_S(N)",
              bench::us_ci(rr.server).c_str(), bench::us_ci(rb.server).c_str());
  std::printf("%-10s | %-26s | %-26s\n", "T_D(N)",
              bench::us_ci(rr.database).c_str(),
              bench::us_ci(rb.database).c_str());
  std::printf("%-10s | %-26s | %-26s\n", "T(N)",
              bench::us_ci(rr.total).c_str(), bench::us_ci(rb.total).c_str());

  const double rel =
      (rr.total.mean - rb.total.mean) / rb.total.mean * 100.0;
  std::printf("\nReading: total latency differs by %.1f%%. Real-cache "
              "misses are *correlated* (a cold key misses on every server "
              "request until refilled, hot keys never miss), which mostly "
              "cancels in the fork-join max — supporting the paper's iid "
              "miss abstraction at matched r.\n", rel);
  return 0;
}
