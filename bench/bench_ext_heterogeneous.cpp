// bench_ext_heterogeneous — extension experiment: one slow server in an
// otherwise healthy cluster (the common production failure: a replica on a
// degraded machine). The generalised Proposition 1 (server_stage.h) extends
// the paper's bounds to per-server service rates; here we validate them
// against simulation and quantify how much one laggard costs the whole
// fork-join request.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/workload_driven.h"
#include "core/theorem1.h"

int main() {
  using namespace mclat;

  bench::banner("Extension: heterogeneous servers",
                "(generalised Prop. 1; no paper counterpart)",
                "4 servers at 50 Kps each offered; server 0's muS degraded "
                "from 80 Kps downward; xi=0.15, q=0.1, N=150, r=0");

  std::printf("\n%10s | %7s | %-18s | %-26s | %s\n", "muS0(Kps)", "rho0",
              "eq.(14) lo~hi (us)", "experiment (us)", "band");
  std::printf("-----------+---------+--------------------+----------------------------+------\n");

  std::uint64_t seed = 700;
  for (const double mu0 :
       {80'000.0, 75'000.0, 70'000.0, 65'000.0, 60'000.0, 55'000.0}) {
    core::SystemConfig sys = core::SystemConfig::facebook();
    sys.total_key_rate = 4.0 * 50'000.0;
    sys.miss_ratio = 0.0;
    sys.service_rates = {mu0, 80'000.0, 80'000.0, 80'000.0};
    const core::LatencyModel model(sys);
    const core::Bounds b = model.server_mean_bounds(150);

    cluster::WorkloadDrivenConfig cfg;
    cfg.system = sys;
    cfg.common.warmup_time = 1.5 * bench::time_scale();
    cfg.common.measure_time = 12.0 * bench::time_scale();
    cfg.common.seed = seed++;
    const auto pools = cluster::WorkloadDrivenSim(cfg).run();
    dist::Rng rng(seed ^ 0x777ull);
    const auto reqs =
        cluster::assemble_requests(pools, sys, 15'000, 150, rng);
    const auto ci = reqs.server_ci();
    std::printf("%10.0f | %6.1f%% | %18s | %-26s | %s\n", mu0 / 1000.0,
                100.0 * 50'000.0 / mu0, bench::us_bounds(b).c_str(),
                bench::us_ci(ci).c_str(), bench::verdict(ci.mean, b, 1.35));
  }

  std::printf("\nReading: the whole request's latency tracks the WORST "
              "server's utilisation (Prop. 1's 'worst case among the "
              "Memcached servers'): degrading one of four servers from 80 "
              "to 55 Kps (62%% -> 91%% utilisation) multiplies E[T_S(N)] "
              "several-fold even though 3/4 of the cluster is untouched — "
              "why production systems eject slow replicas aggressively "
              "(C3, the paper's ref [13]).\n");
  return 0;
}
