// bench_table3_validation — reproduces Table 3: basic validation of
// Theorem 1 under the Facebook workload (§5.1).
//
// Paper setup: 2 clients + 4 memcached servers, mutilate replaying the
// Facebook statistics (q=0.1, ξ=0.15, λ=62.5 Kps/server), μ_S=80 Kps,
// N=150 keys/request, r=1 %, μ_D⁻¹=1 ms, 10-minute run (~10⁶ requests).
// Ours: the Mode-A simulated testbed (DESIGN.md §2) at the same parameters.
#include <cstdio>

#include "bench_util.h"
#include "cluster/workload_driven.h"
#include "core/theorem1.h"
#include "tools/deployment_flags.h"

int main() {
  using namespace mclat;

  const core::SystemConfig sys = core::SystemConfig::facebook();
  bench::banner("Table 3", "ICDCS'17 Table 3 (basic validation)",
                tools::table3_banner().c_str());

  // Theory.
  const core::LatencyModel model(sys);
  const core::LatencyEstimate est = model.estimate();
  const auto& s1 = model.server_stage().server(0);
  std::printf("delta = %.4f   rho = %.3f   eta = %.0f/s\n", s1.delta(),
              s1.utilization(), s1.eta());

  // Experiment: long Mode-A run (scaled down from the paper's 10 min).
  cluster::WorkloadDrivenConfig cfg;
  cfg.system = sys;
  cfg.common.warmup_time = 2.0 * bench::time_scale();
  cfg.common.measure_time = 30.0 * bench::time_scale();
  cfg.common.seed = 1;
  const auto requests = cluster::run_workload_experiment(
      cfg, static_cast<std::uint64_t>(100'000 * bench::time_scale()));

  std::printf("\n%-8s | %-24s | %-28s | paper (theory / experiment)\n",
              "Latency", "Theorem 1 (us)", "Experiment (us)");
  std::printf("---------+--------------------------+------------------------------+----------------------------\n");
  std::printf("%-8s | %24s | %-28s | 20 / 20 [18.12, 21.68]\n", "T_N(N)",
              bench::us(est.network).c_str(),
              bench::us_ci(requests.network_ci()).c_str());
  std::printf("%-8s | %24s | %-28s | 351~366 / 368 [362, 373]\n", "T_S(N)",
              bench::us_bounds(est.server).c_str(),
              bench::us_ci(requests.server_ci()).c_str());
  std::printf("%-8s | %24s | %-28s | 836 / 867 [855, 879]\n", "T_D(N)",
              bench::us(est.database).c_str(),
              bench::us_ci(requests.database_ci()).c_str());
  std::printf("%-8s | %24s | %-28s | 836~1222 / 1144 [1128, 1160]\n", "T(N)",
              bench::us_bounds(est.total).c_str(),
              bench::us_ci(requests.total_ci()).c_str());

  // The systematic offset the max-statistics shortcut introduces
  // (EXPERIMENTS.md): eq. 21/12 approximate E[max] by a quantile, which
  // undershoots by ~gamma/rate; report the corrected expectations too.
  const core::DatabaseStage db(sys.miss_ratio, sys.db_service_rate);
  std::printf("\nExact-harmonic T_D(N) (gamma-corrected): %s us\n",
              bench::us(db.expected_max_harmonic(150)).c_str());
  std::printf("Verdicts: T_S %s, T(N) %s (within stretched Theorem-1 band)\n",
              bench::verdict(requests.server_ci().mean, est.server, 1.25),
              bench::verdict(requests.total_ci().mean, est.total, 1.25));
  return 0;
}
