// legacy_cache.h — the pre-flat-index cache::LruStore, kept VERBATIM as an
// in-process twin. NOT production code.
//
// When the production store's std::unordered_map<string_view, ItemHeader*>
// index was replaced by the flat open-addressing table (src/cache/
// flat_index.h, DESIGN.md §4j), this header preserved the old
// implementation so the rewrite could be *proven*, not eyeballed:
//
//   * tests/cache/test_flat_index_twin.cpp drives both stores through
//     identical randomized set/set_sized/get/remove/TTL-expiry/flush
//     sequences and requires every return value and the full StoreStats
//     (including resident_bytes) to match sample-for-sample;
//   * bench/bench_micro_cache.cpp measures the `_LegacyCache` twins
//     interleaved with the production benches on the same machine, so the
//     BENCH_cache.json speedups are same-run apples-to-apples.
//
// The only edits relative to the pre-rewrite src/cache/lru_store.{h,cpp}
// are (a) the namespace, (b) the same resident_bytes accounting and
// remove(key, hash) overload the production store gained in the same PR —
// both are index-agnostic bookkeeping, added here so the twin exposes the
// identical API surface the equivalence test compares. The index itself —
// the thing under test — is untouched std::unordered_map.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/lru_store.h"  // cache::StoreStats — shared so stats compare
#include "cache/slab_allocator.h"
#include "hashing/hashes.h"

namespace mclat::bench::legacy_cache {

class LruStore {
 public:
  explicit LruStore(const cache::SlabAllocator::Config& cfg = {})
      : slabs_(cfg), lru_(slabs_.num_classes()) {}

  LruStore(const LruStore&) = delete;
  LruStore& operator=(const LruStore&) = delete;
  ~LruStore() { flush(); }

  bool set(std::string_view key, std::string_view value, double now = 0.0,
           double ttl = 0.0) {
    ItemHeader* item =
        emplace_item(key, hashing::fnv1a64(key), value.size(), now, ttl);
    if (item == nullptr) return false;
    std::memcpy(item->value_data(), value.data(), value.size());
    return true;
  }

  bool set_sized(std::string_view key, std::size_t value_bytes,
                 double now = 0.0, double ttl = 0.0) {
    return set_sized_hashed(key, hashing::fnv1a64(key), value_bytes, now, ttl);
  }

  bool set_sized_hashed(std::string_view key, std::uint64_t key_hash,
                        std::size_t value_bytes, double now = 0.0,
                        double ttl = 0.0) {
    ItemHeader* item = emplace_item(key, key_hash, value_bytes, now, ttl);
    if (item == nullptr) return false;
    std::memset(item->value_data(), 'v', value_bytes);
    return true;
  }

  [[nodiscard]] std::optional<std::string_view> get(std::string_view key,
                                                    double now = 0.0) {
    return get(key, hashing::fnv1a64(key), now);
  }

  [[nodiscard]] std::optional<std::string_view> get(std::string_view key,
                                                    std::uint64_t key_hash,
                                                    double now) {
    ++stats_.gets;
    const auto it = index_.find(Prehashed{key, key_hash});
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ItemHeader* item = it->second;
    if (item->expired(now)) {
      destroy(item);
      ++stats_.expirations;
      ++stats_.misses;
      return std::nullopt;
    }
    const std::size_t cls = cache::SlabAllocator::class_of(item);
    lru_unlink(item, cls);
    lru_push_front(item, cls);
    ++stats_.hits;
    return item->value();
  }

  [[nodiscard]] bool contains(std::string_view key, double now = 0.0) const {
    return contains(key, hashing::fnv1a64(key), now);
  }

  [[nodiscard]] bool contains(std::string_view key, std::uint64_t key_hash,
                              double now) const {
    const auto it = index_.find(Prehashed{key, key_hash});
    return it != index_.end() && !it->second->expired(now);
  }

  bool remove(std::string_view key) {
    return remove(key, hashing::fnv1a64(key));
  }

  bool remove(std::string_view key, std::uint64_t key_hash) {
    const auto it = index_.find(Prehashed{key, key_hash});
    if (it == index_.end()) return false;
    destroy(it->second);
    ++stats_.deletes;
    return true;
  }

  void flush() {
    for (std::size_t cls = 0; cls < lru_.size(); ++cls) {
      while (lru_[cls].tail != nullptr) destroy(lru_[cls].tail);
    }
    index_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] const cache::StoreStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const cache::SlabAllocator& allocator() const noexcept {
    return slabs_;
  }
  void reset_stats() noexcept {
    const std::uint64_t resident = stats_.resident_bytes;
    stats_ = cache::StoreStats{};
    stats_.resident_bytes = resident;
  }

 private:
  struct ItemHeader {
    ItemHeader* lru_prev;
    ItemHeader* lru_next;
    double expiry;  // absolute time; 0 = never
    std::uint32_t key_len;
    std::uint32_t value_len;

    [[nodiscard]] char* key_data() noexcept {
      return reinterpret_cast<char*>(this + 1);
    }
    [[nodiscard]] const char* key_data() const noexcept {
      return reinterpret_cast<const char*>(this + 1);
    }
    [[nodiscard]] char* value_data() noexcept { return key_data() + key_len; }
    [[nodiscard]] std::string_view key() const noexcept {
      return {key_data(), key_len};
    }
    [[nodiscard]] std::string_view value() const noexcept {
      return {key_data() + key_len, value_len};
    }
    [[nodiscard]] bool expired(double now) const noexcept {
      return expiry > 0.0 && now >= expiry;
    }
  };

  struct LruList {
    ItemHeader* head = nullptr;  // MRU
    ItemHeader* tail = nullptr;  // LRU
  };

  struct Prehashed {
    std::string_view key;
    std::uint64_t hash;
  };
  struct KeyHasher {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view k) const noexcept {
      return static_cast<std::size_t>(hashing::fnv1a64(k));
    }
    [[nodiscard]] std::size_t operator()(const Prehashed& k) const noexcept {
      return static_cast<std::size_t>(k.hash);
    }
  };
  struct KeyEqual {
    using is_transparent = void;
    [[nodiscard]] bool operator()(std::string_view a,
                                  std::string_view b) const noexcept {
      return a == b;
    }
    [[nodiscard]] bool operator()(const Prehashed& a,
                                  std::string_view b) const noexcept {
      return a.key == b;
    }
    [[nodiscard]] bool operator()(std::string_view a,
                                  const Prehashed& b) const noexcept {
      return a == b.key;
    }
  };

  void lru_unlink(ItemHeader* it, std::size_t cls) noexcept {
    LruList& l = lru_[cls];
    if (it->lru_prev) it->lru_prev->lru_next = it->lru_next;
    if (it->lru_next) it->lru_next->lru_prev = it->lru_prev;
    if (l.head == it) l.head = it->lru_next;
    if (l.tail == it) l.tail = it->lru_prev;
    it->lru_prev = nullptr;
    it->lru_next = nullptr;
  }

  void lru_push_front(ItemHeader* it, std::size_t cls) noexcept {
    LruList& l = lru_[cls];
    it->lru_prev = nullptr;
    it->lru_next = l.head;
    if (l.head) l.head->lru_prev = it;
    l.head = it;
    if (!l.tail) l.tail = it;
  }

  void destroy(ItemHeader* it) {
    const std::size_t cls = cache::SlabAllocator::class_of(it);
    lru_unlink(it, cls);
    index_.erase(it->key());
    stats_.resident_bytes -=
        sizeof(ItemHeader) + it->key_len + it->value_len;
    slabs_.deallocate(it);
  }

  bool evict_one(std::size_t cls) {
    ItemHeader* victim = lru_[cls].tail;
    if (victim == nullptr) return false;
    destroy(victim);
    ++stats_.evictions;
    return true;
  }

  ItemHeader* emplace_item(std::string_view key, std::uint64_t key_hash,
                           std::size_t value_bytes, double now, double ttl) {
    ++stats_.sets;
    const std::size_t need = sizeof(ItemHeader) + key.size() + value_bytes;
    if (need > slabs_.max_item_size()) {
      ++stats_.set_failures;
      return nullptr;
    }
    // Replace semantics: drop any existing item first (memcached allocates
    // the new item before unlinking, but the visible behaviour is the same
    // and this frees the chunk for immediate reuse when sizes match).
    if (auto it = index_.find(Prehashed{key, key_hash}); it != index_.end()) {
      destroy(it->second);
    }

    const std::size_t cls = slabs_.class_for(need);
    void* mem = slabs_.allocate(need);
    while (mem == nullptr) {
      if (!evict_one(cls)) {
        ++stats_.set_failures;
        return nullptr;
      }
      mem = slabs_.allocate(need);
    }
    auto* item = static_cast<ItemHeader*>(mem);
    item->lru_prev = nullptr;
    item->lru_next = nullptr;
    item->expiry = ttl > 0.0 ? now + ttl : 0.0;
    item->key_len = static_cast<std::uint32_t>(key.size());
    item->value_len = static_cast<std::uint32_t>(value_bytes);
    std::memcpy(item->key_data(), key.data(), key.size());
    index_.emplace(item->key(), item);
    lru_push_front(item, cls);
    stats_.resident_bytes += need;
    return item;
  }

  cache::SlabAllocator slabs_;
  // Keys in the index view into chunk memory, which is stable for the
  // item's lifetime; entries are erased before their chunk is recycled.
  std::unordered_map<std::string_view, ItemHeader*, KeyHasher, KeyEqual>
      index_;
  std::vector<LruList> lru_;  // one list per slab class
  cache::StoreStats stats_;
};

}  // namespace mclat::bench::legacy_cache
