// bench_fig4_quantiles — reproduces Fig. 4: the kth quantile of the
// per-key processing latency T_S at a Memcached server versus the eq. (9)
// bounds, under the Facebook workload.
#include <cstdio>

#include "bench_util.h"
#include "cluster/workload_driven.h"
#include "core/theorem1.h"

int main() {
  using namespace mclat;

  const core::SystemConfig sys = core::SystemConfig::facebook();
  bench::banner("Figure 4", "ICDCS'17 Fig. 4 (per-key T_S quantiles)",
                "Facebook workload; eq. (9) band vs measured ECDF");

  const core::LatencyModel model(sys);
  const core::GixM1Queue& q = model.server_stage().server(0);

  cluster::WorkloadDrivenConfig cfg;
  cfg.system = sys;
  cfg.common.warmup_time = 2.0 * bench::time_scale();
  cfg.common.measure_time = 30.0 * bench::time_scale();
  cfg.common.seed = 4;
  const cluster::MeasurementPools pools =
      cluster::WorkloadDrivenSim(cfg).run();
  dist::Rng rng(99);
  const dist::Empirical ecdf =
      cluster::per_key_sojourn_distribution(pools, sys, 400'000, rng);

  std::printf("\n%6s | %-18s | %10s | %s\n", "k", "eq.(9) lo~hi (us)",
              "measured", "inside");
  std::printf("-------+--------------------+------------+-------\n");
  for (double k = 0.05; k < 0.999; k += 0.05) {
    const core::Bounds b = q.sojourn_quantile_bounds(k);
    const double measured = ecdf.quantile(k);
    std::printf("%6.2f | %18s | %10.1f | %s\n", k,
                bench::us_bounds(b).c_str(), measured * 1e6,
                bench::verdict(measured, b));
  }
  // The tail points the paper's plot emphasises.
  for (const double k : {0.99, 0.995, 0.999}) {
    const core::Bounds b = q.sojourn_quantile_bounds(k);
    const double measured = ecdf.quantile(k);
    std::printf("%6.3f | %18s | %10.1f | %s\n", k,
                bench::us_bounds(b).c_str(), measured * 1e6,
                bench::verdict(measured, b));
  }
  return 0;
}
