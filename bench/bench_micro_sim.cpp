// bench_micro_sim — microbenchmarks of the discrete-event kernel: raw event
// throughput, schedule/cancel churn, small-buffer spill, M/M/1 station
// cycles, batch-source emission, end-to-end events/sec. These determine how
// much simulated time the figure harnesses can afford.
//
// Each kernel-bound workload is measured twice: once on sim::Simulator (the
// inline-callback calendar) and once on the pre-rewrite kernel preserved in
// legacy_sim.h, so a single run yields a machine-independent baseline-vs-
// after comparison. scripts/bench_kernel.sh turns the JSON output into
// BENCH_kernel.json.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "dist/rng.h"
#include "legacy_sim.h"
#include "sim/simulator.h"
#include "sim/source.h"
#include "sim/station.h"

namespace {

using namespace mclat;

// ---------------------------------------------------------------------------
// Kernel-only workloads, templated over the kernel so the legacy baseline
// runs the byte-identical scenario.
// ---------------------------------------------------------------------------

template <typename Sim>
void schedule_and_run_events(benchmark::State& state) {
  for (auto _ : state) {
    Sim s;
    for (int i = 0; i < 1024; ++i) {
      s.schedule_at(static_cast<double>(i % 37), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void BM_ScheduleAndRunEvents(benchmark::State& state) {
  schedule_and_run_events<sim::Simulator>(state);
}
BENCHMARK(BM_ScheduleAndRunEvents);

void BM_ScheduleAndRunEvents_LegacyKernel(benchmark::State& state) {
  schedule_and_run_events<bench::legacy::Simulator>(state);
}
BENCHMARK(BM_ScheduleAndRunEvents_LegacyKernel);

template <typename Sim>
void self_rescheduling_clock(benchmark::State& state) {
  // The arrival-process pattern: one event that reschedules itself.
  for (auto _ : state) {
    Sim s;
    int remaining = 1024;
    std::function<void()> tick = [&] {
      if (--remaining > 0) s.schedule_in(1.0, tick);
    };
    s.schedule_in(1.0, tick);
    s.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void BM_SelfReschedulingClock(benchmark::State& state) {
  self_rescheduling_clock<sim::Simulator>(state);
}
BENCHMARK(BM_SelfReschedulingClock);

void BM_SelfReschedulingClock_LegacyKernel(benchmark::State& state) {
  self_rescheduling_clock<bench::legacy::Simulator>(state);
}
BENCHMARK(BM_SelfReschedulingClock_LegacyKernel);

template <typename Sim>
void schedule_cancel_churn(benchmark::State& state) {
  // Timer-wheel abuse: every event is scheduled and then cancelled before
  // it can fire, the dominant pattern of retry/timeout layers. Exercises
  // cancellation cost and dead-entry disposal in the calendar.
  for (auto _ : state) {
    Sim s;
    dist::Rng rng(7);
    std::vector<std::uint64_t> ids;
    ids.reserve(256);
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 256; ++i) {
        ids.push_back(s.schedule_at(1.0 + rng.uniform(), [] {}));
      }
      for (const auto id : ids) s.cancel(id);
      ids.clear();
      s.run_until(0.5);  // dispose of nothing: all cancellations are live
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void BM_ScheduleCancelChurn(benchmark::State& state) {
  schedule_cancel_churn<sim::Simulator>(state);
}
BENCHMARK(BM_ScheduleCancelChurn);

void BM_ScheduleCancelChurn_LegacyKernel(benchmark::State& state) {
  schedule_cancel_churn<bench::legacy::Simulator>(state);
}
BENCHMARK(BM_ScheduleCancelChurn_LegacyKernel);

template <typename Sim>
void slot_recycling_mixed_horizon(benchmark::State& state) {
  // Steady-state calendar churn: a rotating population of pending events at
  // mixed horizons, every third one cancelled and replaced — the shape of a
  // cluster sim's in-flight request set.
  for (auto _ : state) {
    Sim s;
    dist::Rng rng(11);
    std::array<std::uint64_t, 64> pending{};
    std::uint64_t fired = 0;
    int i = 0;
    std::function<void()> refill = [&] {
      ++fired;
      const std::size_t k = i++ & 63;
      if (i % 3 == 0) s.cancel(pending[(i * 7) & 63]);
      pending[k] = s.schedule_in(0.01 + rng.uniform(), refill);
    };
    for (int j = 0; j < 64; ++j) {
      pending[j] = s.schedule_in(rng.uniform(), refill);
    }
    s.run_until(20.0);
    s.step();  // drain one more to keep both kernels on the same schedule
    benchmark::DoNotOptimize(fired);
    state.counters["events"] = static_cast<double>(s.events_executed());
  }
}

void BM_SlotRecyclingMixedHorizon(benchmark::State& state) {
  slot_recycling_mixed_horizon<sim::Simulator>(state);
}
BENCHMARK(BM_SlotRecyclingMixedHorizon);

void BM_SlotRecyclingMixedHorizon_LegacyKernel(benchmark::State& state) {
  slot_recycling_mixed_horizon<bench::legacy::Simulator>(state);
}
BENCHMARK(BM_SlotRecyclingMixedHorizon_LegacyKernel);

template <typename Sim>
void sbo_spill_oversized_capture(benchmark::State& state) {
  // Captures past InlineCallback's inline buffer (64 B) take the rare heap
  // fallback; the legacy kernel heap-allocated through std::function for
  // the same capture. Guards the spill path against regressions.
  struct Fat {
    std::array<std::uint64_t, 24> payload;  // 192 B: 3x the inline buffer
  };
  static_assert(!sim::InlineCallback::stores_inline<
                decltype([f = Fat{}] { benchmark::DoNotOptimize(&f); })>());
  for (auto _ : state) {
    Sim s;
    Fat fat{};
    fat.payload[0] = 1;
    std::uint64_t sum = 0;
    for (int i = 0; i < 256; ++i) {
      s.schedule_at(static_cast<double>(i % 19),
                    [fat, &sum] { sum += fat.payload[0]; });
    }
    s.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}

void BM_SboSpillOversizedCapture(benchmark::State& state) {
  sbo_spill_oversized_capture<sim::Simulator>(state);
}
BENCHMARK(BM_SboSpillOversizedCapture);

void BM_SboSpillOversizedCapture_LegacyKernel(benchmark::State& state) {
  sbo_spill_oversized_capture<bench::legacy::Simulator>(state);
}
BENCHMARK(BM_SboSpillOversizedCapture_LegacyKernel);

// ---------------------------------------------------------------------------
// Station-level workloads (run on the production kernel only: stations are
// compiled against sim::Simulator).
// ---------------------------------------------------------------------------

void BM_MM1StationKeysPerSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::ServiceStation st(s, std::make_unique<dist::Exponential>(80'000.0),
                           dist::Rng(1), [](const sim::Departure&) {});
    dist::Rng arr(2);
    std::uint64_t id = 0;
    // Reschedule through a one-pointer trampoline, exactly as the cluster
    // simulators do: copying the std::function closure into the calendar
    // per arrival measured the copy, not the station (it kept this pair's
    // baseline artificially close — see DESIGN.md §4d).
    std::function<void()> arrive = [&] {
      st.arrive(id++);
      s.schedule_in(arr.exponential(62'500.0), [&arrive] { arrive(); });
    };
    s.schedule_in(0.0, [&arrive] { arrive(); });
    s.run_until(1.0);  // one simulated second ≈ 62.5k keys
    benchmark::DoNotOptimize(st.completed());
  }
  state.SetItemsProcessed(state.iterations() * 62'500);
}
BENCHMARK(BM_MM1StationKeysPerSecond);

// The same M/M/1 second on the pre-rewrite path end to end: legacy calendar
// (priority_queue + unordered_map of std::function), legacy Rng
// (std::generate_canonical), virtual service sampling, and a 32-byte
// departure capture that exceeds libstdc++'s std::function SBO — i.e. one
// heap allocation per scheduled event. This is the in-process baseline for
// the headline keys/s ratio in BENCH_kernel.json.
void BM_MM1StationKeysPerSecond_LegacyKernel(benchmark::State& state) {
  for (auto _ : state) {
    bench::legacy::Simulator s;
    bench::legacy::ServiceStation st(
        s, std::make_unique<bench::legacy::Exponential>(80'000.0),
        bench::legacy::Rng(1), [](const sim::Departure&) {});
    bench::legacy::Rng arr(2);
    std::uint64_t id = 0;
    // The legacy twin reschedules the way the seed simulators actually did:
    // copying the std::function closure into the calendar per arrival (a
    // heap allocation per key on this path). The production variant above
    // uses the trampoline the production simulators use; each side runs
    // its own era's idiom.
    std::function<void()> arrive = [&] {
      st.arrive(id++);
      s.schedule_in(arr.exponential(62'500.0), arrive);
    };
    s.schedule_in(0.0, arrive);
    s.run_until(1.0);
    benchmark::DoNotOptimize(st.completed());
  }
  state.SetItemsProcessed(state.iterations() * 62'500);
}
BENCHMARK(BM_MM1StationKeysPerSecond_LegacyKernel);

void BM_GixM1FacebookServerSecond(benchmark::State& state) {
  // One simulated second of the exact Table-3 per-server workload.
  for (auto _ : state) {
    sim::Simulator s;
    sim::ServiceStation st(s, std::make_unique<dist::Exponential>(80'000.0),
                           dist::Rng(3), [](const sim::Departure&) {});
    const auto gap = dist::GeneralizedPareto::with_mean(
        0.15, 1.0 / (0.9 * 62'500.0));
    std::uint64_t id = 0;
    sim::BatchSource src(s, gap.clone(), dist::GeometricBatch(0.1),
                         dist::Rng(4), [&](std::uint64_t n) {
                           for (std::uint64_t i = 0; i < n; ++i)
                             st.arrive(id++);
                         });
    src.start();
    s.run_until(1.0);
    benchmark::DoNotOptimize(st.completed());
  }
  state.SetItemsProcessed(state.iterations() * 62'500);
}
BENCHMARK(BM_GixM1FacebookServerSecond);

void BM_GeneralizedParetoSampling(benchmark::State& state) {
  const auto gp = dist::GeneralizedPareto::with_mean(0.15, 1.0);
  dist::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.sample(rng));
  }
}
BENCHMARK(BM_GeneralizedParetoSampling);

}  // namespace

BENCHMARK_MAIN();
