// bench_micro_sim — microbenchmarks of the discrete-event kernel: raw event
// throughput, M/M/1 station cycles, batch-source emission, end-to-end
// events/sec. These determine how much simulated time the figure harnesses
// can afford.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>

#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "sim/simulator.h"
#include "sim/source.h"
#include "sim/station.h"

namespace {

using namespace mclat;

void BM_ScheduleAndRunEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1024; ++i) {
      s.schedule_at(static_cast<double>(i % 37), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ScheduleAndRunEvents);

void BM_SelfReschedulingClock(benchmark::State& state) {
  // The arrival-process pattern: one event that reschedules itself.
  for (auto _ : state) {
    sim::Simulator s;
    int remaining = 1024;
    std::function<void()> tick = [&] {
      if (--remaining > 0) s.schedule_in(1.0, tick);
    };
    s.schedule_in(1.0, tick);
    s.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SelfReschedulingClock);

void BM_MM1StationKeysPerSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::ServiceStation st(s, std::make_unique<dist::Exponential>(80'000.0),
                           dist::Rng(1), [](const sim::Departure&) {});
    dist::Rng arr(2);
    std::uint64_t id = 0;
    std::function<void()> arrive = [&] {
      st.arrive(id++);
      s.schedule_in(arr.exponential(62'500.0), arrive);
    };
    s.schedule_in(0.0, arrive);
    s.run_until(1.0);  // one simulated second ≈ 62.5k keys
    benchmark::DoNotOptimize(st.completed());
  }
  state.SetItemsProcessed(state.iterations() * 62'500);
}
BENCHMARK(BM_MM1StationKeysPerSecond);

void BM_GixM1FacebookServerSecond(benchmark::State& state) {
  // One simulated second of the exact Table-3 per-server workload.
  for (auto _ : state) {
    sim::Simulator s;
    sim::ServiceStation st(s, std::make_unique<dist::Exponential>(80'000.0),
                           dist::Rng(3), [](const sim::Departure&) {});
    const auto gap = dist::GeneralizedPareto::with_mean(
        0.15, 1.0 / (0.9 * 62'500.0));
    std::uint64_t id = 0;
    sim::BatchSource src(s, gap.clone(), dist::GeometricBatch(0.1),
                         dist::Rng(4), [&](std::uint64_t n) {
                           for (std::uint64_t i = 0; i < n; ++i)
                             st.arrive(id++);
                         });
    src.start();
    s.run_until(1.0);
    benchmark::DoNotOptimize(st.completed());
  }
  state.SetItemsProcessed(state.iterations() * 62'500);
}
BENCHMARK(BM_GixM1FacebookServerSecond);

void BM_GeneralizedParetoSampling(benchmark::State& state) {
  const auto gp = dist::GeneralizedPareto::with_mean(0.15, 1.0);
  dist::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.sample(rng));
  }
}
BENCHMARK(BM_GeneralizedParetoSampling);

}  // namespace

BENCHMARK_MAIN();
