// bench_ext_redundancy — extension experiment: request replication ("low
// latency via redundancy", the paper's ref [12]) analysed inside the
// GI^X/M/1 model and validated against the simulated testbed.
//
// For d ∈ {1, 2, 3}, every key goes to d servers and the fastest reply
// wins; each server's offered load inflates by d. The sweep over the base
// per-server rate exposes the crossover: redundancy wins while the inflated
// utilisation stays below the cliff and loses after.
#include <cstdio>

#include "bench_util.h"
#include "cluster/workload_driven.h"
#include "core/redundancy.h"

int main() {
  using namespace mclat;

  bench::banner("Extension: redundancy",
                "(paper ref [12] modelled; no paper figure)",
                "E[T_S(N)] for d=1,2,3 vs base per-server load; "
                "xi=0.15, q=0.1, muS=80Kps, N=150");

  std::printf("\n%8s", "l(Kps)");
  for (int d = 1; d <= 3; ++d) std::printf(" | d=%d th-mid/exp (us) ", d);
  std::printf("| best d\n");
  std::printf("---------+----------------------+----------------------+----------------------+-------\n");

  std::uint64_t seed = 900;
  for (const double l : {8'000.0, 12'000.0, 16'000.0, 20'000.0, 24'000.0,
                         30'000.0, 36'000.0}) {
    core::SystemConfig base = core::SystemConfig::facebook();
    base.total_key_rate = 4.0 * l;
    base.miss_ratio = 0.0;  // isolate the server stage
    std::printf("%8.0f", l / 1000.0);
    for (unsigned d = 1; d <= 3; ++d) {
      const core::RedundancyModel model(base, d);
      if (!model.stable()) {
        std::printf(" | %20s", "(unstable)");
        continue;
      }
      // Experiment: simulate at the inflated per-server rate, assemble
      // min-of-d keys.
      cluster::WorkloadDrivenConfig sim_cfg;
      sim_cfg.system = base;
      sim_cfg.system.total_key_rate = base.total_key_rate * d;
      sim_cfg.common.warmup_time = 1.0 * bench::time_scale();
      sim_cfg.common.measure_time = 8.0 * bench::time_scale();
      sim_cfg.common.seed = seed++;
      const auto pools = cluster::WorkloadDrivenSim(sim_cfg).run();
      dist::Rng rng(seed ^ 0x12345ull);
      const auto reqs = cluster::assemble_requests_redundant(
          pools, base, 8'000, 150, d, rng);
      std::printf(" | %8.1f /%8.1f  ",
                  model.expected_max_bounds(150).midpoint() * 1e6,
                  reqs.server_ci().mean * 1e6);
    }
    const auto best = core::RedundancyModel::best_redundancy(base, 150, 3);
    std::printf("| %u\n", best ? *best : 0u);
  }

  std::printf("\nReading: at light load (<= ~16 Kps) d=2 beats d=1 — the "
              "min-of-2 tail gain outweighs doubled utilisation. Past "
              "~24 Kps the inflated load crosses the xi=0.15 cliff and "
              "redundancy backfires, exactly the regime split reported for "
              "redundancy systems. Theory midpoints and simulation agree "
              "on the crossover.\n");
  return 0;
}
