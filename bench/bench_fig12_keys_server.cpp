// bench_fig12_keys_server — reproduces Fig. 12: E[T_S(N)] as the number of
// keys per request sweeps 1 → 10⁴ (log-spaced), Facebook workload. The
// paper: logarithmic growth, ~100 µs at N=1 to ~650 µs at N=10⁴.
//
// Each replication runs its own testbed (pools + assembly at every N) on a
// deterministic per-trial seed stream; per-N Welford accumulators are
// merged in trial order, so MCLAT_BENCH_JOBS cannot change the numbers.
#include <array>
#include <cmath>
#include <cstdio>

#include "bench_sweep.h"

int main() {
  using namespace mclat;

  const core::SystemConfig sys = core::SystemConfig::facebook();
  bench::banner("Figure 12", "ICDCS'17 Fig. 12 (keys per request, servers)",
                "E[T_S(N)], N in [1, 1e4]; Facebook workload");

  constexpr std::array<std::uint64_t, 10> kKeys = {
      1, 2, 5, 10, 30, 100, 300, 1000, 3000, 10'000};

  const core::LatencyModel model(sys);
  const bench::SweepOptions opt = bench::sweep_options_from_env();
  const exec::TrialRunner runner({opt.jobs, 12});
  using PerN = std::array<stats::Welford, kKeys.size()>;
  const std::vector<PerN> trials = runner.run(
      opt.replications, [&](std::uint64_t, std::uint64_t trial_seed) {
        cluster::WorkloadDrivenConfig cfg;
        cfg.system = sys;
        cfg.common.warmup_time = 2.0 * bench::time_scale();
        cfg.common.measure_time = 25.0 * bench::time_scale();
        cfg.common.seed = exec::stream_seed(trial_seed, exec::Stream::simulation);
        const cluster::MeasurementPools pools =
            cluster::WorkloadDrivenSim(cfg).run();
        dist::Rng rng(exec::stream_seed(trial_seed, exec::Stream::assembly));
        PerN per_n;
        for (std::size_t i = 0; i < kKeys.size(); ++i) {
          const std::uint64_t n = kKeys[i];
          const std::uint64_t reqs = n >= 3000 ? 2'000 : 10'000;
          const auto assembled =
              cluster::assemble_requests(pools, sys, reqs, n, rng);
          for (const double s : assembled.server) per_n[i].add(s);
        }
        return per_n;
      });

  std::printf("\n%8s | %-18s | %-26s | %s\n", "N", "eq.(14) lo~hi (us)",
              "experiment (us)", "band");
  std::printf("---------+--------------------+----------------------------+------\n");
  for (std::size_t i = 0; i < kKeys.size(); ++i) {
    const std::uint64_t n = kKeys[i];
    const core::Bounds b = model.server_mean_bounds(n);
    std::vector<stats::Welford> parts;
    parts.reserve(trials.size());
    for (const PerN& t : trials) parts.push_back(t[i]);
    const stats::MeanCI ci = stats::pooled_mean_ci(parts);
    std::printf("%8llu | %18s | %-26s | %s\n",
                static_cast<unsigned long long>(n),
                bench::us_bounds(b).c_str(), bench::us_ci(ci).c_str(),
                bench::verdict(ci.mean, b, 1.35));
  }
  std::printf("\nShape check: E[T_S(N)] = Theta(log N) — each decade of N "
              "adds a constant ~ln(10)/eta ~ %.0f us.\n",
              std::log(10.0) / model.server_stage().server(0).eta() * 1e6);
  std::printf("Note: the N<=2 rows sit above the eq.(14) band by design — "
              "eq. (12) approximates E[max of N] by the N/(N+1) quantile, "
              "which at N=1 is the *median* of an exponential (ln 2/eta) "
              "while the measured mean is 1/eta. Ablation A4 quantifies "
              "this vanishing-in-log-N offset.\n");
  return 0;
}
