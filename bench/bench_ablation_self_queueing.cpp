// bench_ablation_self_queueing — ablation A5: where does the paper's
// independence assumption stop holding?
//
// The model treats a request's N keys as independent samples of the
// stationary per-key latency (§3: the keys of one request are "quite
// limited relative to the number of simultaneous end-user requests"). In a
// real fork-join cluster that is only true while N ≪ M × (requests in
// flight): as N/M grows, a request's own Binomial(N, 1/M) keys land on one
// server *simultaneously* and queue behind each other, adding a ~linear
// (N/M)/μ_S self-queueing term the model does not see.
//
// We sweep N at a fixed offered key rate and compare the Mode-B cluster
// (real fork-join, self-queueing included) with the Mode-A testbed
// (independent resampling, the paper's methodology) and Theorem 1.
#include <cstdio>

#include "bench_util.h"
#include "cluster/end_to_end.h"
#include "cluster/workload_driven.h"
#include "core/theorem1.h"

int main() {
  using namespace mclat;

  bench::banner("Ablation A5", "independence assumption vs self-queueing",
                "4 servers, 32 Kps each offered, xi->Poisson fanout, r=0; "
                "N swept at constant aggregate key rate");

  core::SystemConfig sys = core::SystemConfig::facebook();
  sys.total_key_rate = 4.0 * 32'000.0;
  sys.miss_ratio = 0.0;

  // Mode-A pools once (per-key latency is N-independent there).
  cluster::WorkloadDrivenConfig wd;
  wd.system = sys;
  wd.system.burst_xi = 0.0;      // match Mode B's Poisson request stream
  wd.system.concurrency_q = 0.0;
  wd.common.warmup_time = 1.0 * bench::time_scale();
  wd.common.measure_time = 10.0 * bench::time_scale();
  wd.common.seed = 77;
  const auto pools = cluster::WorkloadDrivenSim(wd).run();
  dist::Rng rng(770);

  core::SystemConfig model_cfg = wd.system;
  const core::LatencyModel model(model_cfg);

  std::printf("\n%6s | %6s | %12s | %12s | %12s | %s\n", "N", "N/M",
              "Theorem1 up", "Mode A (us)", "Mode B (us)", "B/A ratio");
  std::printf("-------+--------+--------------+--------------+--------------+----------\n");
  for (const std::uint32_t n : {1u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const auto a =
        cluster::assemble_requests(pools, wd.system, 10'000, n, rng);

    cluster::EndToEndConfig e2e;
    e2e.system = sys;
    e2e.system.keys_per_request = n;
    e2e.common.warmup_time = 0.5 * bench::time_scale();
    e2e.common.measure_time = 4.0 * bench::time_scale();
    e2e.common.seed = 4200 + n;
    const auto b = cluster::EndToEndSim(e2e).run();

    std::printf("%6u | %6.1f | %12.1f | %12.1f | %12.1f | %8.2fx\n", n,
                n / 4.0, model.server_mean_bounds(n).upper * 1e6,
                a.server_ci().mean * 1e6, b.server.mean * 1e6,
                b.server.mean / a.server_ci().mean);
  }

  std::printf(
      "\nReading: Mode A (the paper's methodology) tracks Theorem 1 at "
      "every N. The real fork-join cluster agrees while N/M <~ 2-4 but "
      "grows ~linearly once a request floods its own servers — at N=256 "
      "(64 keys/server/request) the model underestimates several-fold. "
      "The paper's testbed had N=150 over mutilate-driven servers where "
      "request keys were interleaved with heavy background traffic, which "
      "is exactly the regime where the independence assumption holds; "
      "pure fork-join deployments with thick fan-out per server are "
      "outside the model's domain.\n");
  return 0;
}
