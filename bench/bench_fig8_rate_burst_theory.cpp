// bench_fig8_rate_burst_theory — reproduces Fig. 8 (pure theory):
// E[T_S(N)] for ξ ∈ {0, 0.6, 0.8} as λ sweeps 10 → 78 Kps at μ_S = 80 Kps.
// The paper's reading: burstier keys hit the latency cliff at lower λ
// (80 % / 55 % / 40 % utilisation respectively).
#include <cstdio>

#include "bench_util.h"
#include "core/theorem1.h"

int main() {
  using namespace mclat;

  bench::banner("Figure 8", "ICDCS'17 Fig. 8 (theory: rate x burst)",
                "E[T_S(N)] midpoint estimate; muS=80Kps, q=0.1, N=150");

  const double xis[] = {0.0, 0.6, 0.8};
  std::printf("\n%8s", "l(Kps)");
  for (const double xi : xis) std::printf(" | xi=%.1f lo~hi (us)   ", xi);
  std::printf("\n---------+----------------------+----------------------+----------------------\n");
  for (double l = 10'000.0; l <= 78'000.1; l += 4'000.0) {
    std::printf("%8.0f", l / 1000.0);
    for (const double xi : xis) {
      core::SystemConfig sys = core::SystemConfig::facebook();
      sys.total_key_rate = 4.0 * l;
      sys.burst_xi = xi;
      const core::LatencyModel m(sys);
      if (!m.stable()) {
        std::printf(" | %20s", "(unstable)");
        continue;
      }
      std::printf(" | %20s",
                  bench::us_bounds(m.server_mean_bounds(150)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nShape check: the xi=0.8 column blows up near 30 Kps "
              "(rho=40%%), xi=0.6 near 45 Kps (55%%), xi=0 only near "
              "65 Kps (80%%) — Fig. 8's ordering.\n");
  return 0;
}
