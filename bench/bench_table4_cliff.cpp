// bench_table4_cliff — regenerates Table 4: the cliff utilisation ρ_S(ξ)
// for burst degrees ξ = 0 … 0.95, next to the paper's published values.
//
// The paper gives no formula for "the cliff"; our operational definition
// (DESIGN.md §2, core/cliff.h) is the utilisation where the latency
// inflation factor 1/(1-δ) reaches the value it has at the paper's ξ=0
// anchor (77 %). It is exact at both ends of the table and sags ≤ 0.085
// mid-range.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/cliff.h"

int main() {
  using namespace mclat;

  bench::banner("Table 4", "ICDCS'17 Table 4 (cliff utilisation)",
                "rho_S(xi) from the delta-threshold cliff definition");

  const double paper[] = {0.77, 0.76, 0.76, 0.75, 0.74, 0.73, 0.72,
                          0.71, 0.69, 0.67, 0.65, 0.62, 0.59, 0.55,
                          0.50, 0.45, 0.39, 0.31, 0.21, 0.09};
  const core::CliffAnalyzer cliff;
  const auto rows = cliff.table4();

  std::printf("\n%6s | %10s | %8s | %6s\n", "xi", "ours", "paper", "diff");
  std::printf("-------+------------+----------+-------\n");
  double max_diff = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double diff = rows[i].second - paper[i];
    max_diff = std::max(max_diff, std::abs(diff));
    std::printf("%6.2f | %9.1f%% | %7.0f%% | %+5.3f\n", rows[i].first,
                100.0 * rows[i].second, 100.0 * paper[i], diff);
  }
  std::printf("\nMax |diff| = %.3f.  Headline: Facebook workload "
              "(xi=0.15) cliff at %.0f%% vs the paper's 75%%.\n",
              max_diff, 100.0 * cliff.cliff_utilization(0.15));
  return 0;
}
