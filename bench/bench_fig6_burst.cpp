// bench_fig6_burst — reproduces Fig. 6: E[T_S(N)] as the burst degree ξ of
// the Generalized-Pareto inter-arrival gaps sweeps 0 → 0.6. The paper's
// curve rises from ~300 µs to ~1.3 ms.
#include "bench_sweep.h"

int main() {
  using namespace mclat;

  bench::banner("Figure 6", "ICDCS'17 Fig. 6 (burst degree)",
                "xi in [0, 0.6]; lambda=62.5Kps/server, q=0.1, N=150");
  const bench::SweepOptions opt = bench::sweep_options_from_env();
  bench::print_server_header("xi");
  std::uint64_t seed = 60;
  for (double xi = 0.0; xi <= 0.601; xi += 0.05) {
    core::SystemConfig sys = core::SystemConfig::facebook();
    sys.burst_xi = xi;
    // Burstier sweeps need longer runs for steady state at ~78 % load.
    const auto pt = bench::run_server_point(sys, seed++, 16.0, 20'000, opt);
    bench::print_server_row(xi, "%8.2f", pt);
  }
  std::printf("\nShape check: latency increases monotonically with xi and "
              "accelerates past xi ~ 0.4 (utilisation is beyond the cliff "
              "for that burst degree).\n");
  return 0;
}
