// bench_ext_zipf_imbalance — extension experiment: §2.1's claim, made
// quantitative. The paper observes that "Memcached servers caching the
// popular items have to handle a heavy load"; here we measure the load
// distribution {p_j} that Zipf popularity + consistent hashing actually
// induces, and feed the measured shares back into the latency model to
// price the imbalance.
//
// Method: for each Zipf exponent s, compute each server's exact expected
// key share Σ_{ranks hashed to j} pmf(rank) over a 100k-key space and a
// 16-server ring, then evaluate E[T_S(N)] under (a) the measured {p_j} and
// (b) perfect balance, at 65 % mean utilisation.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/theorem1.h"
#include "dist/zipf.h"
#include "hashing/consistent_hash.h"
#include "workload/keyspace.h"

int main() {
  using namespace mclat;

  bench::banner("Extension: Zipf-induced imbalance",
                "(2.1's observation, quantified; no paper figure)",
                "100k keys, 16-server ring, mean rho=65%, N=150");

  const std::uint64_t keys = 100'000;
  const std::size_t servers = 16;
  const hashing::ConsistentHashRing ring(servers, 160);
  const workload::KeySpace key_strings(keys, 1.0);  // strings only

  // Precompute each rank's server once (the hash does not depend on s).
  std::vector<std::size_t> rank_server(keys);
  for (std::uint64_t rank = 0; rank < keys; ++rank) {
    rank_server[rank] = ring.server_for(key_strings.key_for_rank(rank));
  }

  std::printf("\n%6s | %8s | %8s | %-20s | %-20s | %7s\n", "zipf s", "p1",
              "p1*M", "balanced E[T_S] us", "measured {p_j} us", "tax");
  std::printf("-------+----------+----------+----------------------+----------------------+--------\n");
  for (const double s : {0.5, 0.8, 0.99, 1.1, 1.3, 1.5}) {
    const dist::Zipf zipf(keys, s);
    std::vector<double> share(servers, 0.0);
    for (std::uint64_t rank = 0; rank < keys; ++rank) {
      share[rank_server[rank]] += zipf.pmf(rank);
    }
    const double p1 = *std::max_element(share.begin(), share.end());

    core::SystemConfig balanced = core::SystemConfig::facebook();
    balanced.servers = servers;
    balanced.total_key_rate =
        0.65 * balanced.service_rate * static_cast<double>(servers);
    balanced.miss_ratio = 0.0;
    core::SystemConfig skewed = balanced;
    skewed.load_shares = share;

    const core::Bounds b_bal =
        core::LatencyModel(balanced).server_mean_bounds(150);
    const core::LatencyModel skewed_model(skewed);
    if (!skewed_model.stable()) {
      std::printf("%6.2f | %7.2f%% | %8.2f | %20s | %-20s |   inf\n", s,
                  100.0 * p1, p1 * servers, bench::us_bounds(b_bal).c_str(),
                  "(hot server unstable)");
      continue;
    }
    const core::Bounds b_skew = skewed_model.server_mean_bounds(150);
    std::printf("%6.2f | %7.2f%% | %8.2f | %20s | %20s | %6.2fx\n", s,
                100.0 * p1, p1 * servers, bench::us_bounds(b_bal).c_str(),
                bench::us_bounds(b_skew).c_str(),
                b_skew.upper / b_bal.upper);
  }

  // ---- the fix the related work implements: replicate the hottest keys.
  // Spreading the top-h ranks' mass evenly over all servers (client picks a
  // random replica per access) removes exactly the head concentration.
  std::printf("\nHot-key replication at s = 0.99 (top-h keys replicated "
              "everywhere):\n");
  std::printf("%8s | %8s | %-22s\n", "h", "p1", "E[T_S(150)] us");
  {
    const dist::Zipf zipf(keys, 0.99);
    for (const std::uint64_t h : {0ull, 1ull, 4ull, 16ull, 64ull}) {
      std::vector<double> share(servers, zipf.head_mass(h) /
                                             static_cast<double>(servers));
      for (std::uint64_t rank = h; rank < keys; ++rank) {
        share[rank_server[rank]] += zipf.pmf(rank);
      }
      const double p1 = *std::max_element(share.begin(), share.end());
      core::SystemConfig cfg = core::SystemConfig::facebook();
      cfg.servers = servers;
      cfg.total_key_rate =
          0.65 * cfg.service_rate * static_cast<double>(servers);
      cfg.miss_ratio = 0.0;
      cfg.load_shares = share;
      const core::LatencyModel m(cfg);
      if (!m.stable()) {
        std::printf("%8llu | %7.2f%% | (hot server unstable)\n",
                    static_cast<unsigned long long>(h), 100.0 * p1);
        continue;
      }
      std::printf("%8llu | %7.2f%% | %s\n",
                  static_cast<unsigned long long>(h), 100.0 * p1,
                  bench::us_bounds(m.server_mean_bounds(150)).c_str());
    }
  }

  const dist::Zipf head_probe(keys, 0.99);
  std::printf(
      "\nReading: the imbalance is driven almost entirely by the SINGLE\n"
      "hottest key — at s=0.99 over 100k keys, rank 0 alone carries %.1f%%\n"
      "of all accesses, so whichever server owns it inherits that load on\n"
      "top of its 1/M baseline. Hashing cannot fix this (it averages many\n"
      "small keys, not one huge one): already at s=0.99 the hot server is\n"
      "driven past saturation at a 65%% cluster average. This is exactly\n"
      "the unbalanced-{p_j} regime the paper formulates, it is why Fig. 10\n"
      "sweeps p1 so far (0.3-0.9), and why production systems replicate\n"
      "hot keys instead of re-hashing. (Bigger keyspaces dilute the head:\n"
      "p(rank 0) = 1/H_{n,s} shrinks as n grows.)\n",
      100.0 * head_probe.pmf(0));
  return 0;
}
