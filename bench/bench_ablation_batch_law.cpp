// bench_ablation_batch_law — ablation A6: how much does the GEOMETRIC
// batch-size assumption matter?
//
// The paper's GI^X/M/1 → GI/M/1 collapse (§3) hinges on X ~ Geometric(q):
// only then is the batch's total service time again exponential. Real
// concurrency need not be geometric. We drive the same server with three
// batch-size laws of identical mean 1/(1-q) — geometric (the model),
// deterministic (fixed-size bursts), and a heavy two-point mixture — and
// compare the measured per-key sojourn against the geometric-based
// prediction.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/gixm1.h"
#include "dist/empirical.h"
#include "dist/exponential.h"
#include "dist/generalized_pareto.h"
#include "sim/simulator.h"
#include "sim/source.h"
#include "sim/station.h"

namespace {

using namespace mclat;

dist::Empirical run_with_batch_law(sim::BatchSource::BatchSampler batch,
                                   double key_rate, double q, double mu,
                                   double horizon, std::uint64_t seed) {
  sim::Simulator s;
  std::vector<double> sojourns;
  sim::ServiceStation st(s, std::make_unique<dist::Exponential>(mu),
                         dist::Rng(seed), [&](const sim::Departure& d) {
                           if (d.arrival > 3.0) {
                             sojourns.push_back(d.sojourn_time());
                           }
                         });
  const double batch_rate = (1.0 - q) * key_rate;
  const auto gap =
      dist::GeneralizedPareto::with_mean(0.15, 1.0 / batch_rate);
  std::uint64_t id = 0;
  sim::BatchSource src(s, gap.clone(), std::move(batch),
                       dist::Rng(seed ^ 0xbbull), [&](std::uint64_t n) {
                         for (std::uint64_t i = 0; i < n; ++i)
                           st.arrive(id++);
                       });
  src.start();
  s.run_until(horizon);
  return dist::Empirical(std::move(sojourns));
}

}  // namespace

int main() {
  bench::banner("Ablation A6", "batch-size law sensitivity",
                "same mean batch size 1/(1-q), different laws; Facebook "
                "rates, q=0.5 for a visible effect");

  const double q = 0.5;  // mean batch = 2
  const double key_rate = 50'000.0;
  const double mu = 80'000.0;
  const double horizon = 40.0 * bench::time_scale();

  // The model's prediction (geometric batches).
  const auto gap = dist::GeneralizedPareto::with_mean(
      0.15, 1.0 / ((1.0 - q) * key_rate));
  const core::GixM1Queue model(gap, q, mu);
  std::printf("\nmodel (geometric): E[T_S] in [%.1f, %.1f] us, p99 <= %.1f us\n",
              model.mean_sojourn_bounds().lower * 1e6,
              model.mean_sojourn_bounds().upper * 1e6,
              model.completion_quantile(0.99) * 1e6);

  struct Law {
    const char* label;
    sim::BatchSource::BatchSampler sampler;
  };
  const dist::GeometricBatch geom(q);
  const std::vector<Law> laws = {
      {"Geometric(q=0.5), mean 2",
       [geom](dist::Rng& r) { return geom.sample(r); }},
      {"Deterministic size 2",
       [](dist::Rng&) { return std::uint64_t{2}; }},
      {"Mixture {1 w.p. 8/9, 10 w.p. 1/9}",  // mean 2, heavy bursts
       [](dist::Rng& r) {
         return r.bernoulli(1.0 / 9.0) ? std::uint64_t{10} : std::uint64_t{1};
       }},
  };

  std::printf("\n%-34s | %10s | %10s | %10s\n", "batch law", "mean (us)",
              "p99 (us)", "p999 (us)");
  std::printf("-----------------------------------+------------+------------+----------\n");
  std::uint64_t seed = 60;
  for (const auto& law : laws) {
    const dist::Empirical e = run_with_batch_law(
        law.sampler, key_rate, q, mu, horizon, seed++);
    std::printf("%-34s | %10.1f | %10.1f | %10.1f\n", law.label,
                e.mean() * 1e6, e.quantile(0.99) * 1e6,
                e.quantile(0.999) * 1e6);
  }

  std::printf(
      "\nReading: at equal MEAN batch size the batch-size VARIANCE moves "
      "the latency: deterministic batches (variance 0) run below the "
      "geometric prediction, the bursty mixture runs above it. The "
      "geometric assumption is not innocuous — it encodes a specific "
      "batch variability (SCV_X = q) — but it sits conveniently between "
      "the extremes, and the paper's measured q = 0.1159 makes the spread "
      "small at Facebook-like concurrency (re-run mentally with mean 1.13 "
      "batches: the three laws nearly coincide).\n");
  return 0;
}
