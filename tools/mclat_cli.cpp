// mclat_cli — the command-line front end of the library: the paper's model
// as an operational tool.
//
//   mclat estimate  [deployment flags]       Theorem-1 latency breakdown
//   mclat tail      [deployment flags] --k   latency quantile breakdown
//   mclat cliff     [--xi | --table]         cliff utilisation (Table 4)
//   mclat whatif    [deployment flags]       §5.3 factor ranking
//   mclat redundancy [deployment flags]      best replication factor
//   mclat simulate  [deployment flags]       theory vs simulated testbed
//
// Every subcommand accepts the deployment flags (see --help); `--json`
// switches estimate/tail/simulate to machine-readable output (schema v2,
// via obs::JsonWriter), and `simulate --metrics[=FILE]` exports the
// per-stage metrics registry as JSON (or CSV when FILE ends in .csv).
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include <fstream>

#include "cluster/end_to_end.h"
#include "cluster/trace_replay.h"
#include "cluster/workload_driven.h"
#include "workload/request_stream.h"
#include "core/capacity.h"
#include "core/cliff.h"
#include "core/redundancy.h"
#include "core/sensitivity.h"
#include "core/theorem1.h"
#include "obs/metrics.h"
#include "tools/cli_args.h"
#include "tools/deployment_flags.h"
#include "tools/json_output.h"
#include "tools/simulate_runner.h"

namespace {

using namespace mclat;

core::SystemConfig config_from(tools::CliArgs& args) {
  return tools::deployment_config_from(args);
}

// Shared churn summary for `simulate --e2e` and `replay` (--churn only):
// event/failover/retire counts, refill-storm volume, and one line per
// membership epoch.
void print_churn_summary(const cluster::ChurnStats& cs) {
  std::printf(
      "churn: %llu events (%llu join / %llu leave / %llu drain)   "
      "failovers: %llu   slots retired: %llu\n",
      static_cast<unsigned long long>(cs.events),
      static_cast<unsigned long long>(cs.joins),
      static_cast<unsigned long long>(cs.leaves),
      static_cast<unsigned long long>(cs.drains),
      static_cast<unsigned long long>(cs.failovers),
      static_cast<unsigned long long>(cs.slots_retired));
  std::printf(
      "refill storm: %.2f MiB   ranks remapped: %llu   "
      "live servers at end: %llu (%llu cached items)\n",
      static_cast<double>(cs.refill_storm_bytes) / (1u << 20),
      static_cast<unsigned long long>(cs.ranks_remapped),
      static_cast<unsigned long long>(cs.live_servers_end),
      static_cast<unsigned long long>(cs.resident_items_end));
  for (std::size_t i = 0; i < cs.epochs.size(); ++i) {
    const cluster::ChurnEpochWindow& w = cs.epochs[i];
    std::printf("  epoch %zu @ t=%.2fs: keys=%llu  miss=%.4f  p99=%.1fus\n",
                i, w.start_time, static_cast<unsigned long long>(w.keys),
                w.miss_ratio, w.p99_key_latency_us);
  }
}

int cmd_estimate(tools::CliArgs& args) {
  const core::SystemConfig cfg = config_from(args);
  const bool json = args.flag("json", "emit JSON");
  args.finish("mclat estimate — Theorem-1 latency breakdown");
  const core::LatencyModel model(cfg);
  if (!model.stable()) {
    std::fprintf(stderr, "unstable: offered load exceeds capacity\n");
    return 1;
  }
  const core::LatencyEstimate e = model.estimate();
  if (json) {
    std::printf("%s\n", tools::estimate_json(model, e).c_str());
    return 0;
  }
  std::printf("T_N(N) = %.1f us\n", e.network * 1e6);
  std::printf("T_S(N) = %.1f ~ %.1f us   (delta=%.4f, rho=%.1f%%)\n",
              e.server.lower * 1e6, e.server.upper * 1e6,
              model.server_stage().server(model.server_stage().heaviest())
                  .delta(),
              100.0 * model.server_stage()
                          .server(model.server_stage().heaviest())
                          .utilization());
  std::printf("T_D(N) = %.1f us\n", e.database * 1e6);
  std::printf("T(N)   = %.1f ~ %.1f us\n", e.total.lower * 1e6,
              e.total.upper * 1e6);
  return 0;
}

int cmd_tail(tools::CliArgs& args) {
  const core::SystemConfig cfg = config_from(args);
  const double k = args.number("k", 0.99, "quantile, e.g. 0.99");
  const bool json = args.flag("json", "emit JSON");
  args.finish("mclat tail — latency quantile breakdown");
  const core::LatencyModel model(cfg);
  if (!model.stable()) {
    std::fprintf(stderr, "unstable: offered load exceeds capacity\n");
    return 1;
  }
  const core::TailEstimate t = model.tail(cfg.keys_per_request, k);
  if (json) {
    std::printf("%s\n", tools::tail_json(t).c_str());
    return 0;
  }
  std::printf("p%g of T_S(N) = %.1f ~ %.1f us\n", k * 100.0,
              t.server.lower * 1e6, t.server.upper * 1e6);
  std::printf("p%g of T_D(N) = %.1f us (exact)\n", k * 100.0,
              t.database * 1e6);
  std::printf("p%g of T(N)   = %.1f ~ %.1f us (envelope)\n", k * 100.0,
              t.total.lower * 1e6, t.total.upper * 1e6);
  return 0;
}

int cmd_cliff(tools::CliArgs& args) {
  const double xi = args.number("xi", 0.15, "burst degree");
  const double q = args.number("q", 0.1, "concurrency probability");
  const bool table = args.flag("table", "print the full Table 4");
  args.finish("mclat cliff — latency-cliff utilisation (Prop. 2 / Table 4)");
  core::CliffAnalyzer::Options opt;
  opt.concurrency_q = q;
  const core::CliffAnalyzer cliff(opt);
  if (table) {
    std::printf("xi     rho_S(xi)\n");
    for (const auto& [x, rho] : cliff.table4()) {
      std::printf("%.2f   %.1f%%\n", x, 100.0 * rho);
    }
  } else {
    std::printf("cliff utilisation at xi=%.2f: %.1f%%\n", xi,
                100.0 * cliff.cliff_utilization(xi));
  }
  return 0;
}

int cmd_whatif(tools::CliArgs& args) {
  const core::SystemConfig cfg = config_from(args);
  args.finish("mclat whatif — §5.3 factor ranking");
  const core::WhatIfAnalyzer w(cfg);
  std::printf("baseline E[T(N)] midpoint: %.1f us\n\n",
              w.baseline_latency() * 1e6);
  std::printf("%-22s %-22s %10s\n", "factor", "change", "improvement");
  for (const auto& f : w.all()) {
    std::printf("%-22s %-22s %9.1f%%\n", f.factor.c_str(), f.change.c_str(),
                100.0 * f.improvement());
  }
  return 0;
}

int cmd_redundancy(tools::CliArgs& args) {
  const core::SystemConfig cfg = config_from(args);
  const unsigned d_max = static_cast<unsigned>(
      args.number("dmax", 4, "largest replication factor to consider"));
  args.finish("mclat redundancy — best replication factor (ref [12])");
  std::printf("%4s | %8s | %10s | %-20s\n", "d", "rho", "delta",
              "E[T_S(N)] lo~hi (us)");
  for (unsigned d = 1; d <= d_max; ++d) {
    const core::RedundancyModel m(cfg, d);
    if (!m.stable()) {
      std::printf("%4u | %8s | %10s | unstable\n", d, "-", "-");
      continue;
    }
    const core::Bounds b = m.expected_max_bounds(cfg.keys_per_request);
    std::printf("%4u | %7.1f%% | %10.4f | %9.1f ~ %9.1f\n", d,
                100.0 * m.utilization(), m.delta(), b.lower * 1e6,
                b.upper * 1e6);
  }
  const auto best =
      core::RedundancyModel::best_redundancy(cfg, cfg.keys_per_request, d_max);
  if (best) std::printf("\nbest d = %u\n", *best);
  return 0;
}

int cmd_simulate(tools::CliArgs& args) {
  core::SystemConfig cfg = config_from(args);
  tools::SimulateOptions opt;
  opt.seconds = args.number("seconds", 10.0, "simulated measurement seconds");
  opt.requests = static_cast<std::uint64_t>(
      args.number("requests", 20'000, "requests to assemble"));
  opt.reps = args.count("reps", 1, "independent replications to merge");
  opt.jobs = static_cast<std::size_t>(
      args.count("jobs", 1, "worker threads for replications"));
  const bool json = args.flag("json", "emit JSON");
  const std::string metrics_dest = args.text(
      "metrics", "",
      "export per-stage metrics: --metrics (stdout) or --metrics FILE "
      "(.csv suffix = CSV, else JSON)");
  const bool e2e = args.flag(
      "e2e",
      "run the full event-driven fork-join cluster (Mode B) instead of the "
      "workload-driven testbed (text output only)");
  // Seed/real-cache/coalescing and the replica-lifecycle policy use the
  // same flag spellings as `mclat replay` — both declare them through
  // tools/deployment_flags.h, never privately.
  cluster::CommonConfig common;
  const bool real_cache = tools::common_sim_flags_from(args, common);
  const cluster::RedundancyPolicy policy =
      tools::redundancy_policy_from(args);
  args.finish("mclat simulate — theory vs the simulated testbed");
  opt.seed = common.seed;
  opt.coalescing = common.coalescing;
  const bool coalesce = common.coalescing == cluster::MissCoalescing::kPerServer;
  if (e2e) {
    cluster::EndToEndConfig ecfg;
    ecfg.system = cfg;
    ecfg.redundancy = policy;
    ecfg.common = common;
    ecfg.common.warmup_time = opt.seconds / 10.0;
    ecfg.common.measure_time = opt.seconds;
    if (real_cache) ecfg.miss_mode = cluster::MissMode::kRealCache;
    // Membership events mutate the consistent-hashing ring, so --churn
    // switches routing to the ring mapper (the sim validates the rest:
    // --real-cache, uniform shares, events before the horizon).
    if (ecfg.common.churn.active()) ecfg.mapper = cluster::MapperKind::kRing;
    const cluster::EndToEndResult r = cluster::EndToEndSim(ecfg).run();
    const core::LatencyModel model(cfg);
    const core::LatencyEstimate e = model.estimate();
    std::printf("mode B (event-driven fork-join), redundancy d=%u (%s, %s)\n",
                policy.degree(),
                policy.hedged() ? "hedged" : "immediate",
                policy.cancel_on_win() ? "cancel-on-win" : "losers run");
    std::printf("requests completed: %llu   measured miss ratio: %.4f\n",
                static_cast<unsigned long long>(r.requests_completed),
                r.measured_miss_ratio);
    if (coalesce) {
      std::printf("db fetches: %llu   delayed hits: %llu\n",
                  static_cast<unsigned long long>(r.measured_db_fetches),
                  static_cast<unsigned long long>(r.measured_delayed_hits));
    }
    if (policy.replicated()) {
      std::printf(
          "hedges fired: %llu   replicas cancelled: %llu   "
          "wasted service: %.1f ms\n",
          static_cast<unsigned long long>(r.hedges_fired),
          static_cast<unsigned long long>(r.replicas_cancelled),
          r.replica_wasted_service * 1e3);
    }
    if (ecfg.common.churn.active()) print_churn_summary(r.churn);
    std::printf("%-8s | %-22s | %s\n", "latency", "theory (us)",
                "simulated (us)");
    std::printf("%-8s | %22.1f | %s\n", "T_N(N)", e.network * 1e6,
                stats::format_us(r.network).c_str());
    std::printf("%-8s | %9.1f ~ %10.1f | %s\n", "T_S(N)",
                e.server.lower * 1e6, e.server.upper * 1e6,
                stats::format_us(r.server).c_str());
    std::printf("%-8s | %22.1f | %s\n", "T_D(N)", e.database * 1e6,
                stats::format_us(r.database).c_str());
    std::printf("%-8s | %9.1f ~ %10.1f | %s\n", "T(N)", e.total.lower * 1e6,
                e.total.upper * 1e6, stats::format_us(r.total).c_str());
    std::printf("utilisation:");
    for (const double u : r.server_utilization) {
      std::printf(" %.1f%%", 100 * u);
    }
    std::printf("\n");
    return 0;
  }
  obs::Registry registry;
  if (!metrics_dest.empty()) opt.metrics = &registry;
  const tools::SimulateResult r = tools::run_simulate(cfg, opt);
  if (opt.metrics != nullptr) {
    const bool csv = metrics_dest.size() > 4 &&
                     metrics_dest.rfind(".csv") == metrics_dest.size() - 4;
    const std::string doc = csv ? registry.to_csv()
                                : tools::metrics_json(opt, registry);
    if (metrics_dest == "1" || metrics_dest == "-") {
      std::printf("%s\n", doc.c_str());
    } else {
      std::ofstream out(metrics_dest);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", metrics_dest.c_str());
        return 1;
      }
      out << doc << '\n';
    }
  }
  if (json) {
    std::printf("%s\n", tools::simulate_json(cfg, opt, r).c_str());
    return 0;
  }
  const core::LatencyModel model(cfg);
  const core::LatencyEstimate e = model.estimate();
  std::printf("replications: %llu   jobs: %llu\n",
              static_cast<unsigned long long>(opt.reps),
              static_cast<unsigned long long>(opt.jobs));
  std::printf("%-8s | %-22s | %s\n", "latency", "theory (us)",
              "simulated (us)");
  std::printf("%-8s | %22.1f | %s\n", "T_N(N)", e.network * 1e6,
              stats::format_us(r.network).c_str());
  std::printf("%-8s | %9.1f ~ %10.1f | %s\n", "T_S(N)", e.server.lower * 1e6,
              e.server.upper * 1e6, stats::format_us(r.server).c_str());
  std::printf("%-8s | %22.1f | %s\n", "T_D(N)", e.database * 1e6,
              stats::format_us(r.database).c_str());
  std::printf("%-8s | %9.1f ~ %10.1f | %s\n", "T(N)", e.total.lower * 1e6,
              e.total.upper * 1e6, stats::format_us(r.total).c_str());
  return 0;
}

int cmd_capacity(tools::CliArgs& args) {
  const core::SystemConfig cfg = config_from(args);
  const double budget =
      args.number("budget", 1200.0, "latency budget for E[T(N)], us") * 1e-6;
  args.finish("mclat capacity — invert the model against a latency budget");
  const auto rate = core::max_rate_for_budget(cfg, budget);
  if (rate) {
    std::printf("max aggregate key rate at budget: %.1f Kkeys/s "
                "(%.1f Kps/server)\n", *rate / 1000.0,
                *rate / 1000.0 / static_cast<double>(cfg.servers));
  } else {
    std::printf("max aggregate key rate: infeasible (floor above budget)\n");
  }
  const auto mu = core::service_rate_for_budget(cfg, budget);
  if (mu) {
    std::printf("required muS at current load:    %.1f Kkeys/s/server\n",
                *mu / 1000.0);
  } else {
    std::printf("required muS: infeasible (network+db floor above budget)\n");
  }
  const auto m = core::servers_for_budget(cfg, budget);
  if (m) {
    std::printf("required servers at current load: %zu\n", *m);
  } else {
    std::printf("required servers: infeasible\n");
  }
  return 0;
}

int cmd_replay(tools::CliArgs& args) {
  core::SystemConfig cfg = config_from(args);
  const std::string path =
      args.text("trace", "", "trace CSV to replay (empty = generate one)");
  const auto requests = static_cast<std::uint64_t>(
      args.number("requests", 5'000, "requests to generate when no --trace"));
  const auto keyspace = static_cast<std::uint64_t>(
      args.number("keys", 100'000, "keyspace size"));
  const double zipf = args.number("zipf", 0.99, "Zipf exponent");
  // Same shared flag spellings as `mclat simulate` (deployment_flags.h).
  cluster::TraceReplayConfig rcfg;
  const bool real_cache = tools::common_sim_flags_from(args, rcfg.common);
  const double measure_from = args.number(
      "measure-from", 0.0,
      "statistics window start, s (earlier requests replay unmeasured)");
  args.finish("mclat replay — trace-driven cluster simulation (Mode C)");
  const bool coalesce =
      rcfg.common.coalescing == cluster::MissCoalescing::kPerServer;

  workload::RequestStreamConfig scfg;
  scfg.request_rate =
      cfg.total_key_rate / static_cast<double>(cfg.keys_per_request);
  scfg.keys_per_request = cfg.keys_per_request;
  scfg.keyspace_size = keyspace;
  scfg.zipf_exponent = zipf;
  workload::RequestStream stream(scfg, dist::Rng(rcfg.common.seed));
  workload::Trace trace;
  if (path.empty()) {
    trace = stream.generate_trace(requests);
    std::printf("generated %zu-key trace (%llu requests, %.2f s)\n",
                trace.size(),
                static_cast<unsigned long long>(trace.request_count()),
                trace.duration());
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    trace = workload::Trace::load_csv(in);
    trace.sort_by_time();
    std::printf("loaded %zu-key trace from %s\n", trace.size(), path.c_str());
  }

  rcfg.system = cfg;
  rcfg.miss_mode = real_cache ? cluster::MissMode::kRealCache
                              : cluster::MissMode::kBernoulli;
  rcfg.common.warmup_time = measure_from;
  const cluster::TraceReplayResult r =
      cluster::TraceReplaySim(rcfg).run(trace, stream.keyspace());
  std::printf("requests completed: %llu   measured miss ratio: %.4f\n",
              static_cast<unsigned long long>(r.requests_completed),
              r.measured_miss_ratio);
  if (coalesce) {
    std::printf("db fetches: %llu   delayed hits: %llu\n",
                static_cast<unsigned long long>(r.db_fetches),
                static_cast<unsigned long long>(r.delayed_hits));
  }
  if (rcfg.common.churn.active()) print_churn_summary(r.churn);
  if (measure_from > 0.0) {
    std::printf("measured requests:  %llu (started at or after t=%.2f s)\n",
                static_cast<unsigned long long>(r.measured_requests),
                measure_from);
  }
  std::printf("T_N(N) = %s\n", stats::format_us(r.network).c_str());
  std::printf("T_S(N) = %s\n", stats::format_us(r.server).c_str());
  std::printf("T_D(N) = %s\n", stats::format_us(r.database).c_str());
  std::printf("T(N)   = %s\n", stats::format_us(r.total).c_str());
  std::printf("utilisation:");
  for (const double u : r.server_utilization) std::printf(" %.1f%%", 100 * u);
  std::printf("\n");
  return 0;
}

void usage() {
  std::printf(
      "mclat — Memcached latency model (ICDCS'17 reproduction)\n\n"
      "subcommands:\n"
      "  estimate    Theorem-1 latency breakdown\n"
      "  tail        latency quantile breakdown (extension)\n"
      "  cliff       cliff utilisation (Prop. 2 / Table 4)\n"
      "  whatif      factor ranking (5.3)\n"
      "  redundancy  replication analysis (extension)\n"
      "  simulate    theory vs simulated testbed\n"
      "  replay      trace-driven cluster simulation (Mode C)\n"
      "  capacity    invert the model against a latency budget\n\n"
      "run `mclat <subcommand> --help` for flags.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  tools::CliArgs args(argc, argv, 2);
  // Config-object constructors validate their fields (RedundancyPolicy,
  // CommonConfig, trace loading); surface those messages as flag errors
  // instead of std::terminate.
  try {
    if (cmd == "estimate") return cmd_estimate(args);
    if (cmd == "tail") return cmd_tail(args);
    if (cmd == "cliff") return cmd_cliff(args);
    if (cmd == "whatif") return cmd_whatif(args);
    if (cmd == "redundancy") return cmd_redundancy(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "replay") return cmd_replay(args);
    if (cmd == "capacity") return cmd_capacity(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mclat %s: %s\n", cmd.c_str(), e.what());
    return 2;
  }
  usage();
  return 2;
}
