// simulate_runner.h — the engine behind `mclat simulate`, factored out of
// the CLI so the golden-regression tests (tests/exec/) can drive the exact
// code path the tool ships.
//
// R replications of the Mode-A testbed are fanned across exec::TrialRunner;
// each replication gets the deterministic seed exec::trial_seed(seed, i)
// and its per-component Welford accumulators are merged in trial order, so
// the reported statistics — and the --json rendering below — are
// byte-identical for every --jobs value.
//
// Observability: pass SimulateOptions::metrics to collect the per-stage
// registry (stage.*, server.*, db.*, request.*). Each replication records
// into its own private obs::Registry; those are merged strictly in
// trial-index order after every trial finished, which keeps the registry —
// like the latency statistics — bit-for-bit invariant under --jobs.
// Wall-clock "exec.*" metrics land in the same registry via the TrialRunner
// and are the one namespace exempt from that guarantee.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/workload_driven.h"
#include "core/theorem1.h"
#include "exec/trial_runner.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "stats/summary.h"
#include "stats/welford.h"

namespace mclat::tools {

struct SimulateOptions {
  double seconds = 10.0;           ///< simulated measurement seconds (per rep)
  std::uint64_t requests = 20'000; ///< requests assembled per rep
  std::uint64_t seed = 1;
  std::uint64_t reps = 1;
  std::size_t jobs = 1;
  /// Optional per-stage metrics sink (`--metrics`). Null = recording off,
  /// zero overhead, and — by the recorder null-object contract — byte-for-
  /// byte identical simulation output either way.
  obs::Registry* metrics = nullptr;
  /// Delayed-hit miss coalescing on the database stage (`--coalesce`).
  /// kOff keeps every replication byte-identical to the pre-coalescing tool.
  cluster::MissCoalescing coalescing = cluster::MissCoalescing::kOff;
};

/// Merged per-component statistics over all replications.
struct SimulateResult {
  stats::MeanCI network;
  stats::MeanCI server;
  stats::MeanCI database;
  stats::MeanCI total;
};

inline SimulateResult run_simulate(const core::SystemConfig& sys,
                                   const SimulateOptions& opt) {
  struct Trial {
    stats::Welford network, server, database, total;
    obs::Registry metrics;
  };
  exec::TrialOptions topt;
  topt.jobs = opt.jobs;
  topt.base_seed = opt.seed;
  if (opt.metrics != nullptr) topt.recorder = obs::Recorder(*opt.metrics);
  const exec::TrialRunner runner(topt);
  const bool record = opt.metrics != nullptr;
  const std::vector<Trial> trials =
      runner.run(opt.reps, [&](std::uint64_t, std::uint64_t trial_seed) {
        Trial t;
        cluster::WorkloadDrivenConfig cfg;
        cfg.system = sys;
        cfg.common.measure_time = opt.seconds;
        cfg.common.warmup_time = opt.seconds / 10.0;
        cfg.common.seed = trial_seed;
        cfg.common.coalescing = opt.coalescing;
        if (record) cfg.recorder = obs::Recorder(t.metrics);
        const cluster::AssembledRequests reqs =
            cluster::run_workload_experiment(cfg, opt.requests);
        for (const double x : reqs.network) t.network.add(x);
        for (const double x : reqs.server) t.server.add(x);
        for (const double x : reqs.database) t.database.add(x);
        for (const double x : reqs.total) t.total.add(x);
        return t;
      });

  std::vector<stats::Welford> n, s, d, t;
  for (const Trial& tr : trials) {
    n.push_back(tr.network);
    s.push_back(tr.server);
    d.push_back(tr.database);
    t.push_back(tr.total);
    if (record) opt.metrics->merge(tr.metrics);  // strict trial-index order
  }
  SimulateResult r;
  r.network = stats::pooled_mean_ci(n);
  r.server = stats::pooled_mean_ci(s);
  r.database = stats::pooled_mean_ci(d);
  r.total = stats::pooled_mean_ci(t);
  return r;
}

namespace detail {
inline void ci_object(obs::JsonWriter& w, std::string_view key,
                      const stats::MeanCI& ci) {
  w.begin_object(key)
      .field("mean_us", ci.mean * 1e6, 6)
      .field("half_us", ci.halfwidth * 1e6, 6)
      .field("count", static_cast<std::uint64_t>(ci.count))
      .end_object();
}
}  // namespace detail

/// Machine-readable rendering of one simulate run (schema v2). The numeric
/// fields keep the v1 names and %.6f precision; v2 adds "schema_version"
/// up front. The exact bytes are frozen by the golden files under
/// tests/golden/ — change the format only together with them.
inline std::string simulate_json(const core::SystemConfig& sys,
                                 const SimulateOptions& opt,
                                 const SimulateResult& r) {
  obs::JsonWriter w;
  w.begin_document()
      .field("seed", static_cast<std::uint64_t>(opt.seed))
      .field("reps", static_cast<std::uint64_t>(opt.reps))
      .field("requests", static_cast<std::uint64_t>(opt.requests))
      .field("n", static_cast<std::uint64_t>(sys.keys_per_request));
  const core::LatencyModel model(sys);
  if (model.stable()) {
    const core::LatencyEstimate e = model.estimate();
    w.begin_object("theory")
        .field("network_us", e.network * 1e6, 6)
        .begin_array("server_us")
        .element(e.server.lower * 1e6, 6)
        .element(e.server.upper * 1e6, 6)
        .end_array()
        .field("database_us", e.database * 1e6, 6)
        .begin_array("total_us")
        .element(e.total.lower * 1e6, 6)
        .element(e.total.upper * 1e6, 6)
        .end_array()
        .end_object();
  }
  w.begin_object("measured");
  detail::ci_object(w, "network", r.network);
  detail::ci_object(w, "server", r.server);
  detail::ci_object(w, "database", r.database);
  detail::ci_object(w, "total", r.total);
  w.end_object().end_object();
  return w.str();
}

/// The `--metrics` document: run identity plus the merged registry.
/// Simulation-domain metrics in here are --jobs-invariant; "exec.*" is not.
inline std::string metrics_json(const SimulateOptions& opt,
                                const obs::Registry& reg) {
  obs::JsonWriter w;
  w.begin_document()
      .field("seed", static_cast<std::uint64_t>(opt.seed))
      .field("reps", static_cast<std::uint64_t>(opt.reps))
      .field("requests", static_cast<std::uint64_t>(opt.requests))
      .field("jobs", static_cast<std::uint64_t>(opt.jobs));
  reg.write_json(w);
  w.end_object();
  return w.str();
}

}  // namespace mclat::tools
