// simulate_runner.h — the engine behind `mclat simulate`, factored out of
// the CLI so the golden-regression tests (tests/exec/) can drive the exact
// code path the tool ships.
//
// R replications of the Mode-A testbed are fanned across exec::TrialRunner;
// each replication gets the deterministic seed exec::trial_seed(seed, i)
// and its per-component Welford accumulators are merged in trial order, so
// the reported statistics — and the --json rendering below — are
// byte-identical for every --jobs value.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/workload_driven.h"
#include "core/theorem1.h"
#include "exec/trial_runner.h"
#include "stats/summary.h"
#include "stats/welford.h"

namespace mclat::tools {

struct SimulateOptions {
  double seconds = 10.0;           ///< simulated measurement seconds (per rep)
  std::uint64_t requests = 20'000; ///< requests assembled per rep
  std::uint64_t seed = 1;
  std::uint64_t reps = 1;
  std::size_t jobs = 1;
};

/// Merged per-component statistics over all replications.
struct SimulateResult {
  stats::MeanCI network;
  stats::MeanCI server;
  stats::MeanCI database;
  stats::MeanCI total;
};

inline SimulateResult run_simulate(const core::SystemConfig& sys,
                                   const SimulateOptions& opt) {
  struct Trial {
    stats::Welford network, server, database, total;
  };
  const exec::TrialRunner runner({opt.jobs, opt.seed});
  const std::vector<Trial> trials =
      runner.run(opt.reps, [&](std::uint64_t, std::uint64_t trial_seed) {
        cluster::WorkloadDrivenConfig cfg;
        cfg.system = sys;
        cfg.measure_time = opt.seconds;
        cfg.warmup_time = opt.seconds / 10.0;
        cfg.seed = trial_seed;
        const cluster::AssembledRequests reqs =
            cluster::run_workload_experiment(cfg, opt.requests);
        Trial t;
        for (const double x : reqs.network) t.network.add(x);
        for (const double x : reqs.server) t.server.add(x);
        for (const double x : reqs.database) t.database.add(x);
        for (const double x : reqs.total) t.total.add(x);
        return t;
      });

  std::vector<stats::Welford> n, s, d, t;
  for (const Trial& tr : trials) {
    n.push_back(tr.network);
    s.push_back(tr.server);
    d.push_back(tr.database);
    t.push_back(tr.total);
  }
  SimulateResult r;
  r.network = stats::pooled_mean_ci(n);
  r.server = stats::pooled_mean_ci(s);
  r.database = stats::pooled_mean_ci(d);
  r.total = stats::pooled_mean_ci(t);
  return r;
}

namespace detail {
inline std::string ci_json(const char* key, const stats::MeanCI& ci) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "\"%s\":{\"mean_us\":%.6f,\"half_us\":%.6f,\"count\":%llu}",
                key, ci.mean * 1e6, ci.halfwidth * 1e6,
                static_cast<unsigned long long>(ci.count));
  return buf;
}
}  // namespace detail

/// Machine-readable rendering of one simulate run. The format is frozen by
/// the golden files under tests/golden/ — change it only together with them.
inline std::string simulate_json(const core::SystemConfig& sys,
                                 const SimulateOptions& opt,
                                 const SimulateResult& r) {
  char head[256];
  std::snprintf(head, sizeof head,
                "{\"seed\":%llu,\"reps\":%llu,\"requests\":%llu,\"n\":%u,",
                static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(opt.reps),
                static_cast<unsigned long long>(opt.requests),
                static_cast<unsigned>(sys.keys_per_request));
  std::string out = head;
  const core::LatencyModel model(sys);
  if (model.stable()) {
    const core::LatencyEstimate e = model.estimate();
    char theory[256];
    std::snprintf(theory, sizeof theory,
                  "\"theory\":{\"network_us\":%.6f,"
                  "\"server_us\":[%.6f,%.6f],\"database_us\":%.6f,"
                  "\"total_us\":[%.6f,%.6f]},",
                  e.network * 1e6, e.server.lower * 1e6, e.server.upper * 1e6,
                  e.database * 1e6, e.total.lower * 1e6, e.total.upper * 1e6);
    out += theory;
  }
  out += "\"measured\":{" + detail::ci_json("network", r.network) + "," +
         detail::ci_json("server", r.server) + "," +
         detail::ci_json("database", r.database) + "," +
         detail::ci_json("total", r.total) + "}}";
  return out;
}

}  // namespace mclat::tools
