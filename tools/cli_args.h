// cli_args.h — a minimal, dependency-free "--flag value" argument parser
// for the mclat command-line tool. Flags are declared with defaults and
// help text; unknown flags are an error (catching typos beats silently
// ignoring them).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mclat::tools {

class CliArgs {
 public:
  /// Parses argv[first..) as alternating "--name value" pairs ("--name"
  /// alone sets the flag to "1" when followed by another flag or the end).
  CliArgs(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected positional argument: %s\n",
                     arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "1";
      }
    }
  }

  /// Declares a flag (records help, returns the parsed or default value).
  [[nodiscard]] double number(const std::string& name, double def,
                              const std::string& help) {
    note(name, std::to_string(def), help);
    const auto it = values_.find(name);
    if (it == values_.end()) return def;
    seen_.insert(name);
    return std::atof(it->second.c_str());
  }

  /// Positive integer flag (>= 1) for counts like --jobs/--reps; a zero,
  /// negative, fractional, or non-numeric value is a usage error (exit 2).
  [[nodiscard]] std::uint64_t count(const std::string& name, std::uint64_t def,
                                    const std::string& help) {
    note(name, std::to_string(def), help);
    const auto it = values_.find(name);
    if (it == values_.end()) return def;
    seen_.insert(name);
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || v < 1) {
      std::fprintf(stderr, "--%s must be a positive integer (got \"%s\")\n",
                   name.c_str(), it->second.c_str());
      std::exit(2);
    }
    return static_cast<std::uint64_t>(v);
  }

  [[nodiscard]] std::string text(const std::string& name, std::string def,
                                 const std::string& help) {
    note(name, def, help);
    const auto it = values_.find(name);
    if (it == values_.end()) return def;
    seen_.insert(name);
    return it->second;
  }

  [[nodiscard]] bool flag(const std::string& name, const std::string& help) {
    note(name, "off", help);
    const auto it = values_.find(name);
    if (it == values_.end()) return false;
    seen_.insert(name);
    return it->second != "0";
  }

  /// Call after all declarations: rejects unknown flags; prints usage when
  /// --help was given.
  void finish(const std::string& usage) const {
    if (values_.count("help") != 0) {
      std::printf("%s\n\nFlags:\n", usage.c_str());
      for (const auto& [name, info] : help_) {
        std::printf("  --%-18s %s (default: %s)\n", name.c_str(),
                    info.second.c_str(), info.first.c_str());
      }
      std::exit(0);
    }
    for (const auto& [name, value] : values_) {
      if (seen_.count(name) == 0 && help_.count(name) == 0) {
        std::fprintf(stderr, "unknown flag: --%s (try --help)\n",
                     name.c_str());
        std::exit(2);
      }
    }
  }

 private:
  void note(const std::string& name, std::string def, std::string help) {
    help_.emplace(name, std::make_pair(std::move(def), std::move(help)));
  }

  std::map<std::string, std::string> values_;
  std::map<std::string, std::pair<std::string, std::string>> help_;
  std::set<std::string> seen_;
};

}  // namespace mclat::tools
