// deployment_flags.h — the ONE definition of the paper's Table-3 deployment
// defaults and of the `--servers/--kps/--q/...` flag set every mclat
// subcommand accepts.
//
// Before this header, the defaults lived in three places that could drift
// independently: core::SystemConfig's member initialisers, the literal
// default arguments of mclat_cli's config_from(), and the banner strings of
// the bench harnesses. Now the numbers are named here once;
// tests/tools/test_deployment_flags.cpp pins them to SystemConfig::facebook()
// so a change to either side fails loudly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "cluster/common_config.h"
#include "cluster/engine/hedge.h"
#include "core/config.h"
#include "dist/discrete.h"
#include "tools/cli_args.h"

namespace mclat::tools {

/// The §5.1 / Table-3 Facebook testbed defaults, in the units the CLI flags
/// use (Kkeys/s and µs — not the SI units SystemConfig stores).
struct DeploymentDefaults {
  double servers = 4;      ///< M
  double kps = 62.5;       ///< λ per server, Kkeys/s
  double q = 0.1;          ///< concurrency probability
  double xi = 0.15;        ///< burst degree ξ
  double mus = 80.0;       ///< μ_S, Kkeys/s per server
  double n = 150;          ///< keys per end-user request N
  double r = 0.01;         ///< cache miss ratio
  double mud = 1.0;        ///< μ_D, Kkeys/s
  double net_us = 20.0;    ///< per-key network latency, µs
};

inline constexpr DeploymentDefaults kTable3{};

/// One-line parameter summary for bench banners, generated from kTable3 so
/// banner text can never disagree with the numbers actually used.
inline std::string table3_banner() {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%.0f balanced servers, lambda=%.1fKps each, q=%.1f, "
                "xi=%.2f, muS=%.0fKps, N=%.0f, r=%.0f%%, muD=%.0fKps, "
                "net=%.0fus",
                kTable3.servers, kTable3.kps, kTable3.q, kTable3.xi,
                kTable3.mus, kTable3.n, kTable3.r * 100.0, kTable3.mud,
                kTable3.net_us);
  return buf;
}

/// Declares the shared deployment flag set on `args` and builds the
/// SystemConfig. Every mclat subcommand (and any flag-driven bench binary)
/// must parse its deployment through here — not a private copy.
inline core::SystemConfig deployment_config_from(CliArgs& args) {
  core::SystemConfig cfg = core::SystemConfig::facebook();
  cfg.servers = static_cast<std::size_t>(
      args.number("servers", kTable3.servers, "number of Memcached servers M"));
  cfg.load_shares.clear();
  const double per_server =
      args.number("kps", kTable3.kps, "per-server key rate, Kkeys/s");
  cfg.total_key_rate = per_server * 1000.0 * static_cast<double>(cfg.servers);
  cfg.concurrency_q =
      args.number("q", kTable3.q, "concurrency probability q");
  cfg.burst_xi = args.number("xi", kTable3.xi, "burst degree xi");
  cfg.service_rate =
      args.number("mus", kTable3.mus, "per-server service rate, Kkeys/s") *
      1000.0;
  cfg.keys_per_request = static_cast<std::uint32_t>(
      args.number("n", kTable3.n, "keys per end-user request N"));
  cfg.miss_ratio = args.number("r", kTable3.r, "cache miss ratio r");
  cfg.db_service_rate =
      args.number("mud", kTable3.mud, "database service rate, Kkeys/s") *
      1000.0;
  cfg.network_latency =
      args.number("net", kTable3.net_us, "network latency per key, us") * 1e-6;
  const double p1 =
      args.number("p1", 0.0, "largest load ratio (0 = balanced)");
  if (p1 > 0.0) cfg.load_shares = dist::skewed_load(cfg.servers, p1);
  cfg.db_queueing =
      args.flag("db-queueing", "model database queueing (rho_D > 0)");
  return cfg;
}

/// Declares the shared simulation knobs — `--seed`, `--real-cache`,
/// `--cache-mb`, `--keytable-budget-mb`, `--coalesce`, `--shard-jobs` —
/// with one spelling and one help string for
/// every subcommand that runs a cluster simulator, and writes them into the
/// config's embedded cluster::CommonConfig. Returns whether --real-cache
/// was given (the miss mode is a per-simulator enum, not a CommonConfig
/// knob). The measurement window is NOT declared here: simulate derives it
/// from --seconds and replay from --measure-from.
inline bool common_sim_flags_from(CliArgs& args,
                                  cluster::CommonConfig& common) {
  common.seed =
      static_cast<std::uint64_t>(args.number("seed", 1, "RNG seed"));
  const bool real_cache = args.flag(
      "real-cache",
      "decide misses with a real per-server LRU cache (the miss ratio "
      "emerges from Zipf popularity and cache capacity)");
  common.cache_bytes_per_server = static_cast<std::size_t>(
      args.number("cache-mb", 8.0,
                  "per-server cache size in MiB (with --real-cache)") *
      static_cast<double>(1u << 20));
  if (args.flag("coalesce",
                "coalesce concurrent misses of one key into a single "
                "database fetch (delayed hits park behind the in-flight "
                "fetch)")) {
    common.coalescing = cluster::MissCoalescing::kPerServer;
  }
  common.keytable_budget_bytes = static_cast<std::size_t>(
      args.number("keytable-budget-mb", 0.0,
                  "cap resident key-table metadata at this many MiB, "
                  "evicting and deterministically rebuilding cold chunks "
                  "(0 = unbounded; results are budget-invariant)") *
      static_cast<double>(1u << 20));
  common.shard_jobs = static_cast<std::size_t>(args.count(
      "shard-jobs", 1,
      "run each trial's event loop on K server-calendar shards plus a "
      "coordinator, in parallel (1 = exact serial loop; K > 1 is its own "
      "deterministic contract, DESIGN.md 4i)"));
  const std::string churn_spec = args.text(
      "churn", "",
      "mid-run membership timeline: comma-separated join@T, leave:J@T "
      "(abrupt; queued work fails over to the ring successor), drain:J@T "
      "(planned; in-flight work finishes) with T in simulated seconds. "
      "Requires the ring mapper; e2e also needs --real-cache (DESIGN.md 4k)");
  if (!churn_spec.empty()) {
    common.churn = cluster::MembershipSchedule::parse(churn_spec);
  }
  return real_cache;
}

/// Declares the replica-lifecycle flag set — `--redundancy`, `--hedge`,
/// `--hedge-quantile`, `--hedge-floor-us`, `--cancel-losers` — and builds
/// the validated cluster::RedundancyPolicy. A contradictory combination
/// (degree 0, hedging with degree 1, a quantile outside (0,1)) throws from
/// the policy constructor with a message naming the offending field.
inline cluster::RedundancyPolicy redundancy_policy_from(CliArgs& args) {
  const auto degree = static_cast<unsigned>(args.count(
      "redundancy", 1,
      "dispatch each key to d independently chosen servers; the first "
      "replica to finish wins"));
  const bool hedged = args.flag(
      "hedge",
      "defer the backup replicas until an online per-key sojourn-quantile "
      "deadline fires (instead of immediate fan-out)");
  const double quantile = args.number(
      "hedge-quantile", 0.95,
      "sojourn quantile the hedge deadline tracks (with --hedge)");
  const double floor_us = args.number(
      "hedge-floor-us", 0.0,
      "hedge deadline floor in us, used until the estimate warms up "
      "(with --hedge)");
  const bool cancel = args.flag(
      "cancel-losers",
      "on a replica win, cancel losing replicas still in flight or queued "
      "(in-service losers run to completion)");
  return cluster::RedundancyPolicy(
      degree,
      hedged ? cluster::HedgeTrigger::kHedged
             : cluster::HedgeTrigger::kImmediate,
      cancel ? cluster::LoserMode::kCancelOnWin
             : cluster::LoserMode::kLetLosersRun,
      quantile, floor_us * 1e-6);
}

}  // namespace mclat::tools
