// deployment_flags.h — the ONE definition of the paper's Table-3 deployment
// defaults and of the `--servers/--kps/--q/...` flag set every mclat
// subcommand accepts.
//
// Before this header, the defaults lived in three places that could drift
// independently: core::SystemConfig's member initialisers, the literal
// default arguments of mclat_cli's config_from(), and the banner strings of
// the bench harnesses. Now the numbers are named here once;
// tests/tools/test_deployment_flags.cpp pins them to SystemConfig::facebook()
// so a change to either side fails loudly.
#pragma once

#include <cstdio>
#include <string>

#include "core/config.h"
#include "dist/discrete.h"
#include "tools/cli_args.h"

namespace mclat::tools {

/// The §5.1 / Table-3 Facebook testbed defaults, in the units the CLI flags
/// use (Kkeys/s and µs — not the SI units SystemConfig stores).
struct DeploymentDefaults {
  double servers = 4;      ///< M
  double kps = 62.5;       ///< λ per server, Kkeys/s
  double q = 0.1;          ///< concurrency probability
  double xi = 0.15;        ///< burst degree ξ
  double mus = 80.0;       ///< μ_S, Kkeys/s per server
  double n = 150;          ///< keys per end-user request N
  double r = 0.01;         ///< cache miss ratio
  double mud = 1.0;        ///< μ_D, Kkeys/s
  double net_us = 20.0;    ///< per-key network latency, µs
};

inline constexpr DeploymentDefaults kTable3{};

/// One-line parameter summary for bench banners, generated from kTable3 so
/// banner text can never disagree with the numbers actually used.
inline std::string table3_banner() {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%.0f balanced servers, lambda=%.1fKps each, q=%.1f, "
                "xi=%.2f, muS=%.0fKps, N=%.0f, r=%.0f%%, muD=%.0fKps, "
                "net=%.0fus",
                kTable3.servers, kTable3.kps, kTable3.q, kTable3.xi,
                kTable3.mus, kTable3.n, kTable3.r * 100.0, kTable3.mud,
                kTable3.net_us);
  return buf;
}

/// Declares the shared deployment flag set on `args` and builds the
/// SystemConfig. Every mclat subcommand (and any flag-driven bench binary)
/// must parse its deployment through here — not a private copy.
inline core::SystemConfig deployment_config_from(CliArgs& args) {
  core::SystemConfig cfg = core::SystemConfig::facebook();
  cfg.servers = static_cast<std::size_t>(
      args.number("servers", kTable3.servers, "number of Memcached servers M"));
  cfg.load_shares.clear();
  const double per_server =
      args.number("kps", kTable3.kps, "per-server key rate, Kkeys/s");
  cfg.total_key_rate = per_server * 1000.0 * static_cast<double>(cfg.servers);
  cfg.concurrency_q =
      args.number("q", kTable3.q, "concurrency probability q");
  cfg.burst_xi = args.number("xi", kTable3.xi, "burst degree xi");
  cfg.service_rate =
      args.number("mus", kTable3.mus, "per-server service rate, Kkeys/s") *
      1000.0;
  cfg.keys_per_request = static_cast<std::uint32_t>(
      args.number("n", kTable3.n, "keys per end-user request N"));
  cfg.miss_ratio = args.number("r", kTable3.r, "cache miss ratio r");
  cfg.db_service_rate =
      args.number("mud", kTable3.mud, "database service rate, Kkeys/s") *
      1000.0;
  cfg.network_latency =
      args.number("net", kTable3.net_us, "network latency per key, us") * 1e-6;
  const double p1 =
      args.number("p1", 0.0, "largest load ratio (0 = balanced)");
  if (p1 > 0.0) cfg.load_shares = dist::skewed_load(cfg.servers, p1);
  cfg.db_queueing =
      args.flag("db-queueing", "model database queueing (rho_D > 0)");
  return cfg;
}

}  // namespace mclat::tools
