// json_output.h — machine-readable renderings of the mclat subcommand
// results, all flowing through obs::JsonWriter (schema v2).
//
// Factored out of mclat_cli.cpp so tests/obs/test_output_schema.cpp can
// assert the exact documents the tool ships without spawning processes.
//
// Schema v2 changes vs the printf-era v1:
//   * every document carries "schema_version": 2 as its first field;
//   * `estimate` reports delta/utilization of the *heaviest* server
//     (model.server_stage().heaviest()), matching the human-readable
//     output — v1 reported server(0), which disagreed under --p1 skew;
//   * `tail` gains the previously missing "network_us" component.
// Field names and numeric precisions are otherwise unchanged, which the
// v1→v2 migration test pins numerically.
#pragma once

#include <string>

#include "core/theorem1.h"
#include "obs/json_writer.h"

namespace mclat::tools {

/// `mclat estimate --json`.
inline std::string estimate_json(const core::LatencyModel& model,
                                 const core::LatencyEstimate& e) {
  const auto& heavy =
      model.server_stage().server(model.server_stage().heaviest());
  obs::JsonWriter w;
  w.begin_document()
      .field("n", static_cast<std::uint64_t>(e.n_keys))
      .field("network_us", e.network * 1e6, 3)
      .begin_object("server_us")
      .field("lower", e.server.lower * 1e6, 3)
      .field("upper", e.server.upper * 1e6, 3)
      .end_object()
      .field("database_us", e.database * 1e6, 3)
      .begin_object("total_us")
      .field("lower", e.total.lower * 1e6, 3)
      .field("upper", e.total.upper * 1e6, 3)
      .end_object()
      .field("delta", heavy.delta(), 6)
      .field("utilization", heavy.utilization(), 6)
      .end_object();
  return w.str();
}

/// `mclat tail --json`.
inline std::string tail_json(const core::TailEstimate& t) {
  obs::JsonWriter w;
  w.begin_document()
      .field("k", t.k, 4)
      .field("network_us", t.network * 1e6, 3)
      .begin_object("server_us")
      .field("lower", t.server.lower * 1e6, 3)
      .field("upper", t.server.upper * 1e6, 3)
      .end_object()
      .field("database_us", t.database * 1e6, 3)
      .begin_object("total_us")
      .field("lower", t.total.lower * 1e6, 3)
      .field("upper", t.total.upper * 1e6, 3)
      .end_object()
      .end_object();
  return w.str();
}

}  // namespace mclat::tools
