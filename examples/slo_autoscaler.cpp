// slo_autoscaler.cpp — the model as the brain of a control loop.
//
// A traffic ramp doubles the offered key rate over a simulated day. Every
// control tick the autoscaler (a) reads the current load, (b) asks the
// capacity solver for the smallest cluster meeting the latency budget with
// a cliff-aware safety margin, and (c) resizes. For each tick we print the
// model's prediction; periodically we cross-check with a quick Mode-A
// simulation of the chosen configuration.
//
//   $ ./slo_autoscaler
#include <algorithm>
#include <cstdio>

#include "cluster/workload_driven.h"
#include "core/capacity.h"
#include "core/cliff.h"
#include "core/theorem1.h"

int main() {
  using namespace mclat;

  const double budget = 1.3e-3;  // E[T(N)] SLO: 1.3 ms
  core::SystemConfig base = core::SystemConfig::facebook();

  const core::CliffAnalyzer cliff;
  const double rho_star = cliff.cliff_utilization(base.burst_xi);
  std::printf("SLO: E[T(N)] <= %.0f us.  Cliff guard: rho <= %.1f%% "
              "(xi = %.2f).\n\n", budget * 1e6, 100.0 * rho_star,
              base.burst_xi);
  std::printf("%6s | %9s | %7s | %6s | %-22s | %s\n", "hour", "load Kps",
              "servers", "rho", "model E[T(N)] (us)", "sim check (us)");
  std::printf("-------+-----------+---------+--------+------------------------+--------------\n");

  std::size_t servers = 4;
  std::uint64_t seed = 100;
  for (int hour = 0; hour <= 12; ++hour) {
    // Traffic ramp: 200 Kps at midnight, peaking toward 520 Kps at noon.
    const double load =
        200'000.0 + 320'000.0 * static_cast<double>(hour) / 12.0;
    core::SystemConfig cfg = base;
    cfg.total_key_rate = load;

    // Control law: smallest cluster meeting the budget AND the cliff guard.
    const auto for_budget = core::servers_for_budget(cfg, budget, 64);
    const auto for_cliff = static_cast<std::size_t>(
        load / (rho_star * cfg.service_rate)) + 1;
    servers = std::max(for_budget.value_or(64), for_cliff);
    cfg.servers = servers;
    cfg.load_shares.clear();

    const core::LatencyModel model(cfg);
    const core::LatencyEstimate est = model.estimate();
    const double rho = cfg.server_utilization(1.0 / servers);

    std::string sim_cell = "-";
    if (hour % 4 == 0) {  // periodic reality check against the testbed
      cluster::WorkloadDrivenConfig sim;
      sim.system = cfg;
      sim.common.warmup_time = 0.5;
      sim.common.measure_time = 3.0;
      sim.common.seed = seed++;
      const auto reqs = cluster::run_workload_experiment(sim, 8'000);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.0f", reqs.total_ci().mean * 1e6);
      sim_cell = buf;
    }
    std::printf("%6d | %9.0f | %7zu | %5.1f%% | %9.1f ~%9.1f | %s\n", hour,
                load / 1000.0, servers, 100.0 * rho, est.total.lower * 1e6,
                est.total.upper * 1e6, sim_cell.c_str());
  }

  std::printf("\nThe autoscaler holds the budget through a 2.6x ramp by "
              "scaling %zu-wide at peak; the cliff guard (Table 4's rule) "
              "binds before the latency budget does at this burst degree — "
              "the paper's recommendation 1 as a control law.\n", servers);
  return 0;
}
