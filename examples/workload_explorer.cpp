// workload_explorer.cpp — the workload-and-substrate tour: generate the
// Facebook-style workload, route it with a consistent-hash ring, feed a
// real slab/LRU cache, and print the statistics each substrate measures.
// Useful as a template for plugging your own trace into the library.
//
//   $ ./workload_explorer
#include <cstdio>
#include <sstream>

#include "cache/lru_store.h"
#include "hashing/consistent_hash.h"
#include "workload/request_stream.h"

int main() {
  using namespace mclat;

  // 1. Generate one second of end-user requests (Zipf keys, N=150 each).
  workload::RequestStreamConfig wcfg;
  wcfg.request_rate = 400.0;
  wcfg.keys_per_request = 150;
  wcfg.keyspace_size = 200'000;
  wcfg.zipf_exponent = 1.0;
  workload::RequestStream stream(wcfg, dist::Rng(1));
  workload::Trace trace = stream.generate_trace(400);
  std::printf("Generated trace: %zu key accesses, %llu requests, %.2f s\n",
              trace.size(),
              static_cast<unsigned long long>(trace.request_count()),
              trace.duration());

  // The trace round-trips through CSV (swap in your own file here).
  std::stringstream csv;
  trace.save_csv(csv);
  trace = workload::Trace::load_csv(csv);

  // 2. Route keys over a 4-server consistent-hash ring.
  const hashing::ConsistentHashRing ring(4, 160);
  std::printf("\nRing arc shares (the {p_j} this ring realises):\n");
  const auto arcs = ring.arc_shares();
  for (std::size_t j = 0; j < arcs.size(); ++j) {
    std::printf("  server %zu: %.3f\n", j, arcs[j]);
  }

  // 3. Replay the trace into per-server LRU caches and watch miss ratios.
  cache::SlabAllocator::Config scfg;
  scfg.memory_limit = 8u << 20;
  scfg.page_size = 64 * 1024;
  std::vector<std::unique_ptr<cache::LruStore>> stores;
  for (std::size_t j = 0; j < 4; ++j) {
    stores.push_back(std::make_unique<cache::LruStore>(scfg));
  }
  const workload::ValueSizeModel values = workload::ValueSizeModel::facebook();
  std::uint64_t routed[4] = {0, 0, 0, 0};
  for (const auto& rec : trace.records()) {
    const std::string key = stream.keyspace().key_for_rank(rec.key_rank);
    const std::size_t j = ring.server_for(key);
    ++routed[j];
    auto& store = *stores[j];
    if (!store.get(key, rec.time).has_value()) {
      dist::Rng vr(rec.key_rank);
      (void)store.set(key, std::string(values.sample(vr), 'v'), rec.time);
    }
  }

  std::printf("\nPer-server replay results:\n");
  std::printf("%8s | %8s | %8s | %9s | %9s | %10s\n", "server", "keys",
              "items", "hit%", "evict", "mem used");
  for (std::size_t j = 0; j < 4; ++j) {
    const auto& st = stores[j]->stats();
    std::printf("%8zu | %8llu | %8zu | %8.1f%% | %9llu | %7zu KB\n", j,
                static_cast<unsigned long long>(routed[j]),
                stores[j]->size(), 100.0 * st.hit_ratio(),
                static_cast<unsigned long long>(st.evictions),
                stores[j]->allocator().memory_used() / 1024);
  }
  std::printf("\n(The hit ratio climbs with a longer trace as the Zipf head "
              "settles into the cache — re-run with more requests to see "
              "the curve the paper's related work optimises.)\n");
  return 0;
}
