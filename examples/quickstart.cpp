// quickstart.cpp — the 60-second tour of the mclat public API.
//
// Builds the paper's §5.1 Facebook-workload configuration, asks the
// analytical model (Theorem 1) for the latency breakdown, runs the
// simulated testbed for a quick cross-check, and prints both side by side —
// a miniature Table 3.
//
//   $ ./quickstart
#include <cstdio>

#include "cluster/workload_driven.h"
#include "core/theorem1.h"
#include "stats/summary.h"

int main() {
  using namespace mclat;

  // 1. Describe the deployment (defaults are the paper's §5.1 testbed:
  //    4 balanced servers, λ=62.5 Kps each, q=0.1, ξ=0.15, μ_S=80 Kps,
  //    N=150 keys/request, r=1 % misses, μ_D=1 Kps, 20 µs network).
  const core::SystemConfig cfg = core::SystemConfig::facebook();

  // 2. Theory: Theorem 1's latency breakdown.
  const core::LatencyModel model(cfg);
  const core::LatencyEstimate est = model.estimate();
  const auto& s1 = model.server_stage().server(0);
  std::printf("Server utilization rho = %.1f%%, GI^X/M/1 root delta = %.4f\n",
              100.0 * s1.utilization(), s1.delta());

  // 3. Experiment: simulate the same system and assemble 20k requests.
  cluster::WorkloadDrivenConfig sim_cfg;
  sim_cfg.system = cfg;
  sim_cfg.common.warmup_time = 1.0;
  sim_cfg.common.measure_time = 8.0;
  const cluster::AssembledRequests sim =
      cluster::run_workload_experiment(sim_cfg, 20'000);

  // 4. Compare.
  std::printf("\n%-8s | %-22s | %s\n", "Latency", "Theorem 1", "Experiment");
  std::printf("---------+------------------------+---------------------\n");
  std::printf("%-8s | %-22s | %s\n", "T_N(N)",
              stats::format_time_us(est.network).c_str(),
              stats::format_us(sim.network_ci()).c_str());
  std::printf("%-8s | %s ~ %-12s | %s\n", "T_S(N)",
              stats::format_time_us(est.server.lower).c_str(),
              stats::format_time_us(est.server.upper).c_str(),
              stats::format_us(sim.server_ci()).c_str());
  std::printf("%-8s | %-22s | %s\n", "T_D(N)",
              stats::format_time_us(est.database).c_str(),
              stats::format_us(sim.database_ci()).c_str());
  std::printf("%-8s | %s ~ %-12s | %s\n", "T(N)",
              stats::format_time_us(est.total.lower).c_str(),
              stats::format_time_us(est.total.upper).c_str(),
              stats::format_us(sim.total_ci()).c_str());
  return 0;
}
