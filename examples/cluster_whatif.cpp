// cluster_whatif.cpp — end-to-end simulation as a design tool: run the full
// fork-join cluster (Mode B) under three candidate configurations and see
// what an end user would actually experience, including the pieces the
// analytical model abstracts away (real LRU caches, a real single-server
// database).
//
// Scenarios:
//   baseline  — Bernoulli misses + infinite-server DB: the model's world.
//   realcache — per-server slab/LRU caches, misses emerge from Zipf skew.
//   frail-db  — the database is a single M/M/1 server: the eq.-19
//               approximation's failure mode, visible as a blown-up T_D.
//
//   $ ./cluster_whatif
#include <cstdio>

#include "cluster/end_to_end.h"

namespace {

void report(const char* label, const mclat::cluster::EndToEndResult& r) {
  std::printf("%-10s | %8.1f | %8.1f | %8.1f | %8.1f | %7.4f | %8llu\n",
              label, r.network.mean * 1e6, r.server.mean * 1e6,
              r.database.mean * 1e6, r.total.mean * 1e6,
              r.measured_miss_ratio,
              static_cast<unsigned long long>(r.requests_completed));
}

}  // namespace

int main() {
  using namespace mclat;

  cluster::EndToEndConfig base;
  base.system = core::SystemConfig::facebook();
  base.system.total_key_rate = 4.0 * 48'000.0;  // 60 % utilisation
  base.system.keys_per_request = 100;
  base.system.miss_ratio = 0.01;
  base.common.warmup_time = 1.0;
  base.common.measure_time = 6.0;
  base.common.seed = 99;

  std::printf("End-to-end cluster: 4 servers x 80 Kps, 48 Kps offered each, "
              "N=100 keys/request\n\n");
  std::printf("%-10s | %8s | %8s | %8s | %8s | %7s | %8s\n", "scenario",
              "T_N us", "T_S us", "T_D us", "T us", "miss", "requests");
  std::printf("-----------+----------+----------+----------+----------+---------+---------\n");

  // 1. The model's world.
  report("baseline", cluster::EndToEndSim(base).run());

  // 2. Real caches: 4 MiB per server over a 100k-key Zipf keyspace.
  cluster::EndToEndConfig realcache = base;
  realcache.miss_mode = cluster::MissMode::kRealCache;
  realcache.mapper = cluster::MapperKind::kRing;
  realcache.keyspace_size = 100'000;
  realcache.zipf_exponent = 1.0;
  realcache.common.cache_bytes_per_server = 4u << 20;
  report("realcache", cluster::EndToEndSim(realcache).run());

  // 3. A database that can actually queue. Miss traffic is
  //    0.01 * 192 Kps = 1.92 Kps against muD = 2.5 Kps: ~77 % utilisation,
  //    so M/M/1 queueing inflates T_D well beyond the 400 us service time.
  cluster::EndToEndConfig frail = base;
  frail.db_mode = cluster::DbMode::kSingleServer;
  frail.system.db_service_rate = 2'500.0;
  report("frail-db", cluster::EndToEndSim(frail).run());

  std::printf(
      "\nReading:\n"
      "  * realcache lands near baseline once its emergent miss ratio is\n"
      "    close to 1%% — the paper's Bernoulli abstraction is benign.\n"
      "  * frail-db shows what eq. (19) hides: when the backend is NOT\n"
      "    'greatly offloaded', database queueing dominates end-user\n"
      "    latency and the model's T_D estimate becomes a lower bound.\n");
  return 0;
}
