// latency_breakdown.cpp — reproduce the paper's reasoning for YOUR numbers:
// feed deployment parameters on the command line and get the Theorem-1
// latency breakdown, the dominant stage, the db regime (eq. 25) and the
// cliff headroom.
//
//   $ ./latency_breakdown [servers] [kps_per_server] [N] [miss_ratio]
#include <cstdio>
#include <cstdlib>

#include "core/cliff.h"
#include "core/sensitivity.h"
#include "core/theorem1.h"

int main(int argc, char** argv) {
  using namespace mclat;

  core::SystemConfig cfg = core::SystemConfig::facebook();
  const std::size_t servers = argc > 1 ? std::atoi(argv[1]) : 4;
  const double kps = argc > 2 ? std::atof(argv[2]) : 62.5;
  cfg.servers = servers;
  cfg.total_key_rate = servers * kps * 1000.0;
  if (argc > 3) cfg.keys_per_request = std::atoi(argv[3]);
  if (argc > 4) cfg.miss_ratio = std::atof(argv[4]);

  std::printf("Deployment: %zu servers, %.1f Kps each (rho = %.1f%%), "
              "N = %u, r = %.4f\n\n", servers, kps,
              100.0 * cfg.server_utilization(1.0 / servers),
              cfg.keys_per_request, cfg.miss_ratio);

  const core::LatencyModel model(cfg);
  if (!model.stable()) {
    std::printf("UNSTABLE: offered load exceeds service capacity.\n");
    return 1;
  }
  const core::LatencyEstimate est = model.estimate();

  std::printf("Theorem 1 breakdown:\n");
  std::printf("  T_N(N)  %10.1f us   (constant network)\n",
              est.network * 1e6);
  std::printf("  T_S(N)  %10.1f ~ %.1f us   (GI^X/M/1 servers, eq. 14)\n",
              est.server.lower * 1e6, est.server.upper * 1e6);
  std::printf("  T_D(N)  %10.1f us   (cache-miss stage, eq. 23)\n",
              est.database * 1e6);
  std::printf("  T(N)    %10.1f ~ %.1f us\n\n", est.total.lower * 1e6,
              est.total.upper * 1e6);

  const char* dominant =
      est.database > est.server.upper
          ? "the database stage"
          : (est.server.lower > est.network ? "the Memcached servers"
                                            : "the network");
  std::printf("Dominant component: %s\n", dominant);

  const core::DbRegime regime =
      core::db_regime(cfg.keys_per_request, cfg.miss_ratio);
  std::printf("Database regime (eq. 25): %s\n",
              regime == core::DbRegime::kLinearInR
                  ? "miss-dominated — reducing r pays off linearly"
                  : "count-dominated — reducing r only helps "
                    "logarithmically; reduce N instead");

  const core::CliffAnalyzer cliff;
  const double rho_star = cliff.cliff_utilization(cfg.burst_xi);
  const double rho = cfg.server_utilization(1.0 / servers);
  std::printf("Cliff headroom: rho = %.1f%% vs cliff %.1f%% -> %s\n", 100 * rho,
              100 * rho_star,
              rho < rho_star ? "below the cliff (healthy)"
                             : "PAST THE CLIFF — add servers or capacity");
  return 0;
}
