// capacity_planner.cpp — using the model the way an SRE would: given a
// measured workload (rate, burstiness, concurrency) and a latency budget,
// answer the provisioning questions the paper's §5.3 raises:
//
//   * where is the latency cliff for THIS workload's burst degree?
//   * how many servers keep every server below the cliff?
//   * what latency does Theorem 1 predict at that size, and at ±1 server?
//   * which factor is the best lever if the budget is still missed?
//
//   $ ./capacity_planner [aggregate_kps] [burst_xi] [latency_budget_us]
#include <cstdio>
#include <cstdlib>

#include "core/cliff.h"
#include "core/sensitivity.h"
#include "core/theorem1.h"

int main(int argc, char** argv) {
  using namespace mclat;

  const double aggregate_kps = argc > 1 ? std::atof(argv[1]) : 400.0;
  const double xi = argc > 2 ? std::atof(argv[2]) : 0.15;
  const double budget_us = argc > 3 ? std::atof(argv[3]) : 1500.0;

  std::printf("Workload: %.0f Kkeys/s aggregate, burst degree xi = %.2f, "
              "q = 0.1\n", aggregate_kps, xi);
  std::printf("Servers:  muS = 80 Kkeys/s each; N = 150 keys/request; "
              "r = 1%%, muD = 1 Kps\n");
  std::printf("Budget:   end-user mean latency <= %.0f us\n\n", budget_us);

  // 1. The cliff for this burst degree (Table 4 / Proposition 2).
  const core::CliffAnalyzer cliff;
  const double rho_star = cliff.cliff_utilization(xi);
  std::printf("Latency cliff for xi=%.2f: %.1f%% utilisation "
              "(Table 4's guideline)\n", xi, 100.0 * rho_star);

  // 2. Smallest cluster that keeps every server below the cliff.
  const double total_rate = aggregate_kps * 1000.0;
  const double per_server_cap = rho_star * 80'000.0;
  const auto servers_needed =
      static_cast<std::size_t>(total_rate / per_server_cap) + 1;
  std::printf("Minimum servers to stay below the cliff: %zu "
              "(%.1f Kps each)\n\n", servers_needed,
              total_rate / 1000.0 / static_cast<double>(servers_needed));

  // 3. Theorem-1 latency at that size and its neighbours.
  std::printf("%8s | %6s | %-22s | within budget?\n", "servers", "rho",
              "E[T(N)] lo~hi (us)");
  std::printf("---------+--------+------------------------+---------------\n");
  for (std::size_t m = servers_needed > 1 ? servers_needed - 1 : 1;
       m <= servers_needed + 2; ++m) {
    core::SystemConfig cfg = core::SystemConfig::facebook();
    cfg.servers = m;
    cfg.load_shares.clear();
    cfg.total_key_rate = total_rate;
    cfg.burst_xi = xi;
    const core::LatencyModel model(cfg);
    if (!model.stable()) {
      std::printf("%8zu | %5.1f%% | %-22s | unstable\n", m,
                  100.0 * cfg.server_utilization(1.0 / m), "(overloaded)");
      continue;
    }
    const core::LatencyEstimate est = model.estimate();
    const bool ok = est.total.midpoint() * 1e6 <= budget_us;
    std::printf("%8zu | %5.1f%% | %9.1f ~%9.1f | %s\n", m,
                100.0 * cfg.server_utilization(1.0 / m),
                est.total.lower * 1e6, est.total.upper * 1e6,
                ok ? "yes" : "NO");
  }

  // 4. If the budget is still missed, rank the levers of §5.3.
  core::SystemConfig chosen = core::SystemConfig::facebook();
  chosen.servers = servers_needed;
  chosen.load_shares.clear();
  chosen.total_key_rate = total_rate;
  chosen.burst_xi = xi;
  const core::WhatIfAnalyzer whatif(chosen);
  std::printf("\nFactor ranking at %zu servers (Theorem-1 midpoint "
              "improvement):\n", servers_needed);
  for (const auto& f : whatif.all()) {
    std::printf("  %-22s %-18s -> %5.1f%%\n", f.factor.c_str(),
                f.change.c_str(), 100.0 * f.improvement());
  }
  std::printf("\nBest single lever: %s (%.1f%%)\n",
              whatif.best().factor.c_str(),
              100.0 * whatif.best().improvement());
  return 0;
}
