#!/usr/bin/env bash
# bench_kernel.sh — regenerate BENCH_kernel.json, the event-kernel
# baseline-vs-after performance snapshot.
#
# Every *_LegacyKernel benchmark in bench_micro_sim is the identical
# workload running on the pre-rewrite path (binary priority_queue calendar,
# unordered_map of std::function, std::generate_canonical Rng, virtual
# service sampling), compiled into the same binary. Measuring both kernels
# interleaved in one process is the only baseline-vs-after comparison that
# survives a noisy machine: cross-binary readings on shared hardware swing
# 2x run to run, twin readings move together.
#
# Usage: scripts/bench_kernel.sh [repetitions]   (default 7; medians kept)
set -euo pipefail
cd "$(dirname "$0")/.."

reps="${1:-7}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target bench_micro_sim >/dev/null

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
./build/bench/bench_micro_sim \
  --benchmark_min_time=0.3 \
  --benchmark_repetitions="$reps" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$raw" 2>/dev/null

python3 - "$raw" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

# name -> median items/s (or median ns/op for benches with no item counter)
medians = {}
for b in report["benchmarks"]:
    if b.get("aggregate_name") != "median":
        continue
    name = b["run_name"]
    medians[name] = {
        "ns_per_op": b["real_time"],
        "items_per_second": b.get("items_per_second"),
    }

LEGACY = "_LegacyKernel"
pairs = {}
singles = {}
for name, m in medians.items():
    if name.endswith(LEGACY):
        pairs.setdefault(name[: -len(LEGACY)], {})["baseline"] = m
    elif name + LEGACY in medians:
        pairs.setdefault(name, {})["after"] = m
    else:
        singles[name] = m

out = {
    "comment": (
        "Event-kernel rewrite snapshot: each baseline is the identical "
        "workload on the pre-rewrite kernel/Rng/station path compiled into "
        "the same binary (bench/legacy_sim.h), measured interleaved in one "
        "process; values are medians over repeated runs. Regenerate with "
        "scripts/bench_kernel.sh."
    ),
    "context": report["context"],
    "kernel_pairs": {},
    "unpaired": singles,
}
for name, p in sorted(pairs.items()):
    base, after = p.get("baseline"), p.get("after")
    entry = {"baseline": base, "after": after}
    if base and after:
        if base.get("items_per_second") and after.get("items_per_second"):
            entry["speedup"] = round(
                after["items_per_second"] / base["items_per_second"], 3
            )
        else:
            entry["speedup"] = round(base["ns_per_op"] / after["ns_per_op"], 3)
    out["kernel_pairs"][name] = entry

with open("BENCH_kernel.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

for name, entry in out["kernel_pairs"].items():
    print(f"{name}: {entry.get('speedup', '?')}x")
print("wrote BENCH_kernel.json")
EOF
