#!/usr/bin/env bash
# bench_cache.sh — regenerate BENCH_cache.json, the large-keyspace fast
# path (DESIGN.md §4j) performance snapshot.
#
# Two sources, two claims:
#
#   * bench_micro_cache index twins: the flat open-addressing index vs the
#     verbatim pre-rewrite std::unordered_map store (legacy_cache.h),
#     prehashed get and set-churn pairs, median over repetitions. Claim:
#     >= 1.5x items/s on both pairs. Single-threaded, so the claim is not
#     core-count gated.
#   * bench_ext_large_keyspace: real-cache trials over servers x keyspace
#     x KeyTable budget with peak-RSS columns. Claim: the headline
#     million-key trial under a 32 MiB table budget stays within its
#     stated peak-RSS budget. The headline cell runs first in the process
#     (ru_maxrss is a monotone high-water mark), and the claim is gated on
#     the platform actually reporting ru_maxrss rather than fabricated.
#
# Usage: scripts/bench_cache.sh            (full-length trials)
#        MCLAT_BENCH_FAST=1 scripts/bench_cache.sh   (quarter-length smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" \
  --target bench_micro_cache bench_ext_large_keyspace >/dev/null

micro_json="$(mktemp)"
e2e_json="$(mktemp)"
ext_raw="$(mktemp)"
trap 'rm -f "$micro_json" "$e2e_json" "$ext_raw"' EXIT

# Index pairs: many short repetitions — the per-op times are tens of ns, so
# the median over 7 reps is what beats scheduler noise, not a longer run.
./build/bench/bench_micro_cache \
  --benchmark_filter='BM_LruStoreGetPresampled$|BM_LruStoreGetPresampled_LegacyCache$|BM_LruStoreSetChurn$|BM_LruStoreSetChurn_LegacyCache$' \
  --benchmark_repetitions=7 --benchmark_min_time=0.3 \
  --benchmark_format=json >"$micro_json" 2>/dev/null

# The million-key bounded-table trial runs seconds per iteration and is
# stable at 3 repetitions.
./build/bench/bench_micro_cache \
  --benchmark_filter='BM_EndToEndMillionKeyBoundedTable$' \
  --benchmark_repetitions=3 --benchmark_min_time=0.2 \
  --benchmark_format=json >"$e2e_json" 2>/dev/null

./build/bench/bench_ext_large_keyspace | tee "$ext_raw"

python3 - "$micro_json" "$e2e_json" "$ext_raw" <<'EOF'
import json
import sys

# --- microbench medians ----------------------------------------------------
medians = {}
for path in sys.argv[1:3]:
    with open(path) as f:
        report = json.load(f)
    medians.update({
        b["name"].removesuffix("_median"): b["items_per_second"]
        for b in report["benchmarks"]
        if b.get("run_type") == "aggregate"
        and b.get("aggregate_name") == "median"
    })

pairs = {}
for flat, legacy in [
    ("BM_LruStoreGetPresampled", "BM_LruStoreGetPresampled_LegacyCache"),
    ("BM_LruStoreSetChurn", "BM_LruStoreSetChurn_LegacyCache"),
]:
    if flat not in medians or legacy not in medians:
        sys.exit(f"bench_cache.sh: {flat} pair missing from micro report")
    pairs[flat] = {
        "flat_index_items_per_s": round(medians[flat], 1),
        "unordered_map_items_per_s": round(medians[legacy], 1),
        "speedup": round(medians[flat] / medians[legacy], 3),
    }

e2e = medians.get("BM_EndToEndMillionKeyBoundedTable")
index_claim = {
    "statement": ">=1.5x median items/s, flat index vs unordered_map store, "
                 "prehashed get and set-churn pairs",
    "required_speedup": 1.5,
    "measured": {k: v["speedup"] for k, v in pairs.items()},
    "holds": all(v["speedup"] >= 1.5 for v in pairs.values()),
}

# --- large-keyspace sweep + RSS headline -----------------------------------
headline = None
rows = []
with open(sys.argv[3]) as f:
    for line in f:
        if line.startswith(("HEADLINE ", "ROW ")):
            cell = {}
            for tok in line.split()[1:]:
                key, value = tok.split("=")
                cell[key] = float(value) if "." in value else int(value)
            if line.startswith("HEADLINE "):
                headline = cell
            else:
                rows.append(cell)

if headline is None or not rows:
    sys.exit("bench_cache.sh: harness output missing HEADLINE/ROW lines")

assessable = headline["rss_peak_mb"] > 0  # ru_maxrss actually reported
rss_claim = {
    "statement": "million-key real-cache trial with a 32 MiB KeyTable "
                 "budget completes within the stated peak-RSS budget "
                 "(whole process; headline cell runs first so the "
                 "monotone ru_maxrss reflects it alone)",
    "rss_budget_mb": headline["rss_budget_mb"],
    "assessable": assessable,
    "measured_peak_rss_mb": headline["rss_peak_mb"] if assessable else None,
    "holds": (headline["rss_peak_mb"] <= headline["rss_budget_mb"])
    if assessable else None,
}
if not assessable:
    rss_claim["note"] = ("platform reported ru_maxrss=0; re-run on a "
                         "platform with working getrusage to assess")

out = {
    "comment": (
        "Large-keyspace fast path snapshot (DESIGN.md 4j): flat "
        "open-addressing index vs the pre-rewrite unordered_map store "
        "(median over repetitions, same process, prehashed entry points), "
        "plus real-cache trials over servers x keyspace x KeyTable budget "
        "with peak-RSS columns. Regenerate with scripts/bench_cache.sh."
    ),
    "index_microbench": pairs,
    "index_speedup_claim": index_claim,
    "million_key_e2e_keys_per_s": round(e2e, 1) if e2e else None,
    "large_keyspace_cells": rows,
    "rss_claim": rss_claim,
}
with open("BENCH_cache.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote BENCH_cache.json ({len(rows)} cells; index speedups "
      f"{index_claim['measured']}; rss {rss_claim['measured_peak_rss_mb']}"
      f"/{rss_claim['rss_budget_mb']} MiB)")
if not index_claim["holds"]:
    sys.exit("bench_cache.sh: index speedup claim does not hold")
if rss_claim["holds"] is False:
    sys.exit("bench_cache.sh: RSS budget claim does not hold")
EOF
