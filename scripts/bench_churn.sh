#!/usr/bin/env bash
# bench_churn.sh — regenerate BENCH_churn.json, the mid-run membership
# churn snapshot (DESIGN.md §4k).
#
# Runs bench_ext_ring_churn (128 ring servers with real LRU stores, one
# cold join and one abrupt leave; per-epoch miss-ratio/P99 windows) and
# folds the ROW/SUMMARY lines into JSON:
#
#   * steady state: post-rebalance miss ratio vs the Ji/Quan/Tan
#     aggregate-LRU (Che) prediction, arXiv:1801.02436;
#   * transient: peak per-epoch P99 vs the pre-event base (the refill
#     storm / failover bulge the asymptotics ignore);
#   * remap cost: fraction of the keyspace whose server moved per event.
#
# Claims follow the bench_shard.sh honesty convention: every claim carries
# an `assessable` field gated on what the machine can actually support.
# All churn claims are virtual-time / bit-identity facts — deterministic
# regardless of core count — so they are always assessable; the core count
# is still recorded (the harness also runs each scenario at shard_jobs=4,
# which merely time-slices on small machines without affecting results).
#
# Usage: scripts/bench_churn.sh            (full-length trials)
#        MCLAT_BENCH_FAST=1 scripts/bench_churn.sh   (quarter-length smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target bench_ext_ring_churn >/dev/null

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
./build/bench/bench_ext_ring_churn | tee "$raw"

python3 - "$raw" <<'EOF'
import json
import sys

cores = None
rows = []
summaries = []
with open(sys.argv[1]) as f:
    for line in f:
        if line.startswith("MACHINE "):
            cores = int(line.split("cores=")[1])
        elif line.startswith(("ROW ", "SUMMARY ")):
            cell = {}
            for tok in line.split()[1:]:
                key, value = tok.split("=")
                try:
                    cell[key] = float(value) if "." in value else int(value)
                except ValueError:
                    cell[key] = value
            (rows if line.startswith("ROW ") else summaries).append(cell)

if cores is None or not rows or not summaries:
    sys.exit("bench_churn.sh: harness output missing MACHINE/ROW/SUMMARY lines")

worst_rel_err = max(abs(s["rel_err"]) for s in summaries)
steady_claim = {
    "statement": (
        "post-rebalance steady-state miss ratio within 15% of the "
        "Ji/Quan/Tan aggregate-capacity LRU prediction (Che approximation)"
    ),
    "assessable": True,  # virtual-time model fact, core-independent
    "worst_abs_rel_err": round(worst_rel_err, 4),
    "holds": worst_rel_err <= 0.15,
}
invariance_claim = {
    "statement": (
        "per-epoch churn counters bit-identical across --shard-jobs 1 vs 4"
    ),
    "assessable": True,  # bit-identity, core-independent (threads time-slice)
    "holds": all(s["shard_invariant"] == 1 for s in summaries),
}

out = {
    "comment": (
        "Mid-run membership churn snapshot (DESIGN.md 4k): 128 ring "
        "servers with real LRU stores, one cold join and one abrupt "
        "leave; per-epoch miss-ratio/P99 windows, post-rebalance steady "
        "state vs arXiv:1801.02436, refill-storm transient and KeyTable "
        "remap fraction. Regenerate with scripts/bench_churn.sh."
    ),
    "machine": {"hardware_concurrency": cores},
    "epochs": rows,
    "scenarios": summaries,
    "claims": [steady_claim, invariance_claim],
}
with open("BENCH_churn.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote BENCH_churn.json ({len(summaries)} scenarios, "
      f"{len(rows)} epoch rows, cores={cores}, "
      f"worst |rel_err|={worst_rel_err:.3f})")
EOF
