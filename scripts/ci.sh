#!/usr/bin/env bash
# ci.sh — the repo's tiered verify, runnable locally or in CI.
#
#   tier 1: release build + full ctest suite (ROADMAP.md "Tier-1 verify")
#   tier 2: ThreadSanitizer build of the concurrency-sensitive suites —
#           the parallel trial-execution engine (label `exec`) and the
#           observability layer it records into (label `obs`).
#   tier 3: ASan+UBSan build of the event-kernel, golden-regression,
#           workload-path, cluster-engine, miss-coalescing and
#           replica-lifecycle suites (labels `sim`, `exec`, `workload`,
#           `cluster`, `delayed_hit` and `hedge`) — the kernel's type-erased
#           inline-callback storage, slot free-list recycling, the
#           KeyTable's string_view-into-arena layout, the engine's
#           JobTable-backed fork-join joins, and the ReplicaSet's
#           cancellation of live events and queued jobs are exactly the
#           code a lifetime bug would hide in, so they run under
#           -fsanitize=address,undefined on every verify.
#
#   --bench-smoke: builds bench_micro_sim + bench_micro_cache and checks
#           the headline microbenches against absolute keys/s floors
#           (a coarse "did someone reintroduce a per-event allocation or a
#           per-arrival key render" tripwire, deliberately far below
#           BENCH_kernel.json / BENCH_workload.json numbers so machine
#           noise never fails CI).
#
# Usage: scripts/ci.sh [--tier1-only|--tsan-only|--asan-only|--bench-smoke]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
run_asan=1
run_bench_smoke=0
case "${1:-}" in
  --tier1-only) run_tsan=0; run_asan=0 ;;
  --tsan-only) run_tier1=0; run_asan=0 ;;
  --asan-only) run_tier1=0; run_tsan=0 ;;
  --bench-smoke) run_tier1=0; run_tsan=0; run_asan=0; run_bench_smoke=1 ;;
  "") ;;
  *)
    echo "usage: scripts/ci.sh [--tier1-only|--tsan-only|--asan-only|--bench-smoke]" >&2
    exit 2
    ;;
esac

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ "$run_tier1" == 1 ]]; then
  echo "==> tier 1: build + full test suite"
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "==> tier 2: TSan on the exec + obs suites"
  cmake -B build-tsan -S . -DMCLAT_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" --target tests_exec tests_obs
  ctest --test-dir build-tsan -L "exec|obs" --output-on-failure -j "$jobs"
fi

if [[ "$run_asan" == 1 ]]; then
  echo "==> tier 3: ASan+UBSan on the sim + exec + workload + cluster + delayed_hit + hedge suites"
  cmake -B build-asan -S . -DMCLAT_SANITIZE=address,undefined
  cmake --build build-asan -j "$jobs" \
    --target tests_sim tests_exec tests_workload_property \
    tests_cluster_engine tests_delayed_hit tests_hedge
  ctest --test-dir build-asan -L "sim|exec|workload|cluster|delayed_hit|hedge" \
    --output-on-failure -j "$jobs"
fi

if [[ "$run_bench_smoke" == 1 ]]; then
  echo "==> bench smoke: headline microbench floors"
  cmake -B build -S .
  cmake --build build -j "$jobs" --target bench_micro_sim bench_micro_cache
  smoke_json="$(mktemp)"
  smoke_json2="$(mktemp)"
  trap 'rm -f "$smoke_json" "$smoke_json2"' EXIT
  ./build/bench/bench_micro_sim \
    --benchmark_filter='BM_ScheduleAndRunEvents$|BM_MM1StationKeysPerSecond$' \
    --benchmark_min_time=0.2 --benchmark_format=json \
    >"$smoke_json" 2>/dev/null
  ./build/bench/bench_micro_cache \
    --benchmark_filter='BM_KeyMaterializeAndMap$|BM_LruStoreGetPrehashed$|BM_EndToEndRealCacheWorkload$|BM_CoalescedMissStorm$|BM_HedgedFanout$' \
    --benchmark_min_time=0.2 --benchmark_format=json \
    >"$smoke_json2" 2>/dev/null
  python3 - "$smoke_json" "$smoke_json2" <<'EOF'
import json, sys

# Floors: ~4x below the BENCH_kernel.json / BENCH_workload.json "after"
# medians, so only a real regression (e.g. a reintroduced per-event
# allocation or per-arrival key render) can trip them.
floors = {
    "BM_ScheduleAndRunEvents": 3.0e6,
    "BM_MM1StationKeysPerSecond": 2.0e6,
    # The memoized key→server path: ~50M keys/s when healthy; anything
    # near the legacy ~1M keys/s string path is a regression.
    "BM_KeyMaterializeAndMap": 10.0e6,
    # Prehashed Zipf-read path: ~3-5M keys/s when healthy.
    "BM_LruStoreGetPrehashed": 0.8e6,
    # The whole engine stack end to end (PoissonSource → mapper → LruStore
    # → DbStage → ForkJoinJoiner): ~0.7M keys/s when healthy.
    "BM_EndToEndRealCacheWorkload": 0.15e6,
    # Bernoulli r=1 miss storm through FetchTable park/release and the
    # stored-handler waiter delivery: ~4.5M keys/s when healthy; a
    # reintroduced per-waiter std::function copy shows up here.
    "BM_CoalescedMissStorm": 1.0e6,
    # Hedged d=2 with cancel-on-win at rho~0.45 through the ReplicaSet
    # (deadline estimator, hedge events, O(1) loser cancellation):
    # ~1.5M keys/s when healthy.
    "BM_HedgedFanout": 0.3e6,
}
rates = {}
for path in sys.argv[1:]:
    with open(path) as f:
        report = json.load(f)
    rates.update(
        {b["name"]: b["items_per_second"] for b in report["benchmarks"]}
    )
failed = False
for name, floor in floors.items():
    rate = rates.get(name)
    if rate is None:
        print(f"FAIL {name}: benchmark missing from report")
        failed = True
        continue
    verdict = "ok" if rate >= floor else "FAIL"
    failed |= rate < floor
    print(f"{verdict} {name}: {rate / 1e6:.2f}M items/s (floor {floor / 1e6:.1f}M)")
sys.exit(1 if failed else 0)
EOF
fi

echo "==> ci.sh: all requested tiers passed"
