#!/usr/bin/env bash
# ci.sh — the repo's tiered verify, runnable locally or in CI.
#
#   tier 1: release build + full ctest suite (ROADMAP.md "Tier-1 verify")
#   tier 2: ThreadSanitizer build of the concurrency-sensitive suites —
#           the parallel trial-execution engine (label `exec`), the
#           observability layer it records into (label `obs`), and the
#           intra-trial sharded-calendar engine (label `pdes`, including
#           the membership-churn K-invariance twin), whose window-barrier
#           handoff is exactly the code a missed happens-before edge would
#           hide in.
#   tier 3: ASan+UBSan build of the event-kernel, golden-regression,
#           workload-path, cache-substrate, cluster-engine,
#           miss-coalescing, replica-lifecycle, sharded-engine and
#           membership-churn suites (labels `sim`, `exec`, `workload`,
#           `cache`, `cluster`, `delayed_hit`, `hedge`, `pdes` and
#           `churn`) — the kernel's type-erased
#           inline-callback storage, slot free-list recycling, the
#           KeyTable's string_view-into-arena layout (now with
#           budget-driven chunk eviction, whose view-pinning contract is
#           only a real proof under ASan), the flat index's
#           backward-shift deletion and incremental rehash, the engine's
#           JobTable-backed fork-join joins, and the ReplicaSet's
#           cancellation of live events and queued jobs are exactly the
#           code a lifetime bug would hide in, so they run under
#           -fsanitize=address,undefined on every verify.
#
#   --bench-smoke: builds bench_micro_sim + bench_micro_cache and checks
#           the headline microbenches against absolute keys/s floors
#           (a coarse "did someone reintroduce a per-event allocation or a
#           per-arrival key render" tripwire, deliberately far below
#           BENCH_kernel.json / BENCH_workload.json numbers so machine
#           noise never fails CI). Also runs the sharded-calendar scaling
#           harness in fast mode: its built-in K-invariance check always
#           applies; the wall-clock speedup floor (2x at 8 shards, below
#           the 3x BENCH_shard.json headline) applies only when the
#           machine has >= 8 cores — fewer cores time-slice the shards
#           and the ratio measures the OS scheduler, not the engine.
#
# Usage: scripts/ci.sh [--tier1-only|--tsan-only|--asan-only|--bench-smoke]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
run_asan=1
run_bench_smoke=0
case "${1:-}" in
  --tier1-only) run_tsan=0; run_asan=0 ;;
  --tsan-only) run_tier1=0; run_asan=0 ;;
  --asan-only) run_tier1=0; run_tsan=0 ;;
  --bench-smoke) run_tier1=0; run_tsan=0; run_asan=0; run_bench_smoke=1 ;;
  "") ;;
  *)
    echo "usage: scripts/ci.sh [--tier1-only|--tsan-only|--asan-only|--bench-smoke]" >&2
    exit 2
    ;;
esac

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ "$run_tier1" == 1 ]]; then
  echo "==> tier 1: build + full test suite"
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "==> tier 2: TSan on the exec + obs + pdes suites"
  cmake -B build-tsan -S . -DMCLAT_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" --target tests_exec tests_obs tests_pdes
  ctest --test-dir build-tsan -L "exec|obs|pdes" --output-on-failure -j "$jobs"
fi

if [[ "$run_asan" == 1 ]]; then
  echo "==> tier 3: ASan+UBSan on the sim + exec + workload + cache + cluster + delayed_hit + hedge + pdes + churn suites"
  cmake -B build-asan -S . -DMCLAT_SANITIZE=address,undefined
  cmake --build build-asan -j "$jobs" \
    --target tests_sim tests_exec tests_workload_property tests_cache \
    tests_cluster_engine tests_delayed_hit tests_hedge tests_pdes \
    tests_churn
  ctest --test-dir build-asan \
    -L "sim|exec|workload|cache|cluster|delayed_hit|hedge|pdes|churn" \
    --output-on-failure -j "$jobs"
fi

if [[ "$run_bench_smoke" == 1 ]]; then
  echo "==> bench smoke: headline microbench floors"
  cmake -B build -S .
  cmake --build build -j "$jobs" --target bench_micro_sim bench_micro_cache
  smoke_json="$(mktemp)"
  smoke_json2="$(mktemp)"
  trap 'rm -f "$smoke_json" "$smoke_json2"' EXIT
  ./build/bench/bench_micro_sim \
    --benchmark_filter='BM_ScheduleAndRunEvents$|BM_MM1StationKeysPerSecond$' \
    --benchmark_min_time=0.2 --benchmark_format=json \
    >"$smoke_json" 2>/dev/null
  ./build/bench/bench_micro_cache \
    --benchmark_filter='BM_KeyMaterializeAndMap$|BM_LruStoreGetPrehashed$|BM_LruStoreGetPresampled$|BM_EndToEndRealCacheWorkload$|BM_EndToEndMillionKeyBoundedTable$|BM_CoalescedMissStorm$|BM_HedgedFanout$' \
    --benchmark_min_time=0.2 --benchmark_format=json \
    >"$smoke_json2" 2>/dev/null
  python3 - "$smoke_json" "$smoke_json2" <<'EOF'
import json, sys

# Floors: ~4x below the BENCH_kernel.json / BENCH_workload.json "after"
# medians, so only a real regression (e.g. a reintroduced per-event
# allocation or per-arrival key render) can trip them.
floors = {
    "BM_ScheduleAndRunEvents": 3.0e6,
    "BM_MM1StationKeysPerSecond": 2.0e6,
    # The memoized key→server path: ~50M keys/s when healthy; anything
    # near the legacy ~1M keys/s string path is a regression.
    "BM_KeyMaterializeAndMap": 10.0e6,
    # Prehashed Zipf-read path: ~3-5M keys/s when healthy.
    "BM_LruStoreGetPrehashed": 0.8e6,
    # Pure index-probe path (ranks presampled): ~13-16M keys/s when the
    # flat index is healthy; anything near the ~8M/s unordered_map twin
    # means the open-addressing probe regressed (BENCH_cache.json).
    "BM_LruStoreGetPresampled": 3.0e6,
    # The whole engine stack end to end (PoissonSource → mapper → LruStore
    # → DbStage → ForkJoinJoiner): ~0.7M keys/s when healthy.
    "BM_EndToEndRealCacheWorkload": 0.15e6,
    # Million-key real-cache trial under a 48 MiB KeyTable budget: wall
    # clock is dominated by lazy chunk builds and eviction-driven rebuilds
    # (~2 ms each), ~20-25K keys/s when healthy. A rebuild storm (e.g. a
    # broken CLOCK hand that evicts the hot chunks) craters this first.
    "BM_EndToEndMillionKeyBoundedTable": 6.0e3,
    # Bernoulli r=1 miss storm through FetchTable park/release and the
    # stored-handler waiter delivery: ~4.5M keys/s when healthy; a
    # reintroduced per-waiter std::function copy shows up here.
    "BM_CoalescedMissStorm": 1.0e6,
    # Hedged d=2 with cancel-on-win at rho~0.45 through the ReplicaSet
    # (deadline estimator, hedge events, O(1) loser cancellation):
    # ~1.5M keys/s when healthy.
    "BM_HedgedFanout": 0.3e6,
}
rates = {}
for path in sys.argv[1:]:
    with open(path) as f:
        report = json.load(f)
    rates.update(
        {b["name"]: b["items_per_second"] for b in report["benchmarks"]}
    )
failed = False
for name, floor in floors.items():
    rate = rates.get(name)
    if rate is None:
        print(f"FAIL {name}: benchmark missing from report")
        failed = True
        continue
    verdict = "ok" if rate >= floor else "FAIL"
    failed |= rate < floor
    print(f"{verdict} {name}: {rate / 1e6:.2f}M items/s (floor {floor / 1e6:.1f}M)")
sys.exit(1 if failed else 0)
EOF

  echo "==> bench smoke: sharded-calendar scaling (fast mode)"
  cmake --build build -j "$jobs" --target bench_ext_shard_scaling
  shard_out="$(mktemp)"
  trap 'rm -f "$smoke_json" "$smoke_json2" "$shard_out"' EXIT
  # The harness exits nonzero on a K-invariance violation by itself.
  MCLAT_BENCH_FAST=1 ./build/bench/bench_ext_shard_scaling >"$shard_out"
  python3 - "$shard_out" <<'EOF'
import sys

cores = None
rows = []
with open(sys.argv[1]) as f:
    for line in f:
        if line.startswith("MACHINE "):
            cores = int(line.split("cores=")[1])
        elif line.startswith("ROW "):
            cell = dict(tok.split("=") for tok in line.split()[1:])
            rows.append({k: float(v) for k, v in cell.items()})

if cores is None or not rows:
    sys.exit("FAIL shard smoke: harness output missing MACHINE/ROW lines")
if cores < 8:
    print(f"ok shard smoke: K-invariance held; speedup floor skipped "
          f"({cores} core(s) < 8 — shards would time-slice)")
    sys.exit(0)

anchors = {r["servers"]: r["wall_s"] for r in rows if r["shards"] == 1}
worst = min(
    anchors[r["servers"]] / r["wall_s"] for r in rows if r["shards"] == 8
)
# Floor at 2x: far enough under the 3x BENCH_shard.json headline that
# machine noise never fails CI, high enough that a serialization bug
# (e.g. a barrier every event instead of every window) trips it.
if worst < 2.0:
    print(f"FAIL shard smoke: 8-shard speedup {worst:.2f}x < 2.0x floor")
    sys.exit(1)
print(f"ok shard smoke: 8-shard speedup {worst:.2f}x (floor 2.0x)")
EOF
fi

echo "==> ci.sh: all requested tiers passed"
