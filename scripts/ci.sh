#!/usr/bin/env bash
# ci.sh — the repo's two-tier verify, runnable locally or in CI.
#
#   tier 1: release build + full ctest suite (ROADMAP.md "Tier-1 verify")
#   tier 2: ThreadSanitizer build of the concurrency-sensitive suites —
#           the parallel trial-execution engine (label `exec`) and the
#           observability layer it records into (label `obs`).
#
# Usage: scripts/ci.sh [--tier1-only|--tsan-only]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
case "${1:-}" in
  --tier1-only) run_tsan=0 ;;
  --tsan-only) run_tier1=0 ;;
  "") ;;
  *) echo "usage: scripts/ci.sh [--tier1-only|--tsan-only]" >&2; exit 2 ;;
esac

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ "$run_tier1" == 1 ]]; then
  echo "==> tier 1: build + full test suite"
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "==> tier 2: TSan on the exec + obs suites"
  cmake -B build-tsan -S . -DMCLAT_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" --target tests_exec tests_obs
  ctest --test-dir build-tsan -L "exec|obs" --output-on-failure -j "$jobs"
fi

echo "==> ci.sh: all requested tiers passed"
