#!/usr/bin/env bash
# bench_workload.sh — regenerate BENCH_workload.json, the workload-path
# (keyspace memoization + alias sampling + prehashed store probes)
# baseline-vs-after performance snapshot.
#
# Every *_LegacyWorkload benchmark in bench_micro_core / bench_micro_cache
# is the identical workload running on the pre-optimisation path (per-draw
# CDF binary search, per-arrival key-string rendering + fnv re-hashing +
# value-size RNG construction), compiled into the same binary
# (bench/legacy_workload.h). Measuring both paths interleaved in one
# process is the only baseline-vs-after comparison that survives a noisy
# machine: cross-binary readings on shared hardware swing 2x run to run,
# twin readings move together.
#
# Usage: scripts/bench_workload.sh [repetitions]   (default 7; medians kept)
set -euo pipefail
cd "$(dirname "$0")/.."

reps="${1:-7}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target bench_micro_core bench_micro_cache \
  >/dev/null

filter='DiscreteSample|KeyMaterializeAndMap|RefillValueMetadata'
filter+='|LruStoreGetPrehashed|EndToEndRealCacheWorkload'

raw_core="$(mktemp)"
raw_cache="$(mktemp)"
trap 'rm -f "$raw_core" "$raw_cache"' EXIT
./build/bench/bench_micro_core \
  --benchmark_filter="$filter" \
  --benchmark_min_time=0.3 \
  --benchmark_repetitions="$reps" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$raw_core" 2>/dev/null
./build/bench/bench_micro_cache \
  --benchmark_filter="$filter" \
  --benchmark_min_time=0.3 \
  --benchmark_repetitions="$reps" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$raw_cache" 2>/dev/null

python3 - "$raw_core" "$raw_cache" <<'EOF'
import json
import sys

medians = {}
context = None
for path in sys.argv[1:]:
    with open(path) as f:
        report = json.load(f)
    context = context or report["context"]
    for b in report["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        medians[b["run_name"]] = {
            "ns_per_op": b["real_time"],
            "items_per_second": b.get("items_per_second"),
        }

LEGACY = "_LegacyWorkload"
pairs = {}
for name, m in medians.items():
    if name.endswith(LEGACY):
        pairs.setdefault(name[: -len(LEGACY)], {})["baseline"] = m
    elif name + LEGACY in medians:
        pairs.setdefault(name, {})["after"] = m

out = {
    "comment": (
        "Workload-path optimisation snapshot (memoized KeyTable, alias "
        "sampling, prehashed LruStore probes): each baseline is the "
        "identical workload on the pre-optimisation string/RNG/hash path "
        "compiled into the same binary (bench/legacy_workload.h), measured "
        "interleaved in one process; values are medians over repeated "
        "runs. Regenerate with scripts/bench_workload.sh."
    ),
    "context": context,
    "workload_pairs": {},
}
for name, p in sorted(pairs.items()):
    base, after = p.get("baseline"), p.get("after")
    entry = {"baseline": base, "after": after}
    if base and after:
        if base.get("items_per_second") and after.get("items_per_second"):
            entry["speedup"] = round(
                after["items_per_second"] / base["items_per_second"], 3
            )
        else:
            entry["speedup"] = round(base["ns_per_op"] / after["ns_per_op"], 3)
    out["workload_pairs"][name] = entry

with open("BENCH_workload.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

for name, entry in out["workload_pairs"].items():
    print(f"{name}: {entry.get('speedup', '?')}x")
print("wrote BENCH_workload.json")
EOF
