#!/usr/bin/env bash
# bench_shard.sh — regenerate BENCH_shard.json, the intra-trial parallel
# execution (sharded-calendar engine, DESIGN.md §4i) scaling snapshot.
#
# Runs bench_ext_shard_scaling (one end-to-end trial per shard_jobs x
# server-count cell, wall-clock + events/s + K-invariance witness) and
# folds the ROW lines into JSON. The headline "≥3x at 8 shards" claim is
# gated on the machine actually having >= 8 cores to run 8 shards + the
# coordinator: on fewer cores the cells time-slice, the measured speedup
# is an artifact of the scheduler, and the claim is recorded as not
# assessable rather than published as a number the hardware cannot have
# produced.
#
# Usage: scripts/bench_shard.sh            (full-length trials)
#        MCLAT_BENCH_FAST=1 scripts/bench_shard.sh   (quarter-length smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target bench_ext_shard_scaling >/dev/null

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
./build/bench/bench_ext_shard_scaling | tee "$raw"

python3 - "$raw" <<'EOF'
import json
import sys

cores = None
rows = []
with open(sys.argv[1]) as f:
    for line in f:
        if line.startswith("MACHINE "):
            cores = int(line.split("cores=")[1])
        elif line.startswith("ROW "):
            cell = {}
            for tok in line.split()[1:]:
                key, value = tok.split("=")
                cell[key] = float(value) if "." in value else int(value)
            rows.append(cell)

if cores is None or not rows:
    sys.exit("bench_shard.sh: harness output missing MACHINE/ROW lines")

# speedup vs the shard_jobs=1 serial anchor of the same server row
anchors = {r["servers"]: r["wall_s"] for r in rows if r["shards"] == 1}
for r in rows:
    r["speedup_vs_serial"] = round(anchors[r["servers"]] / r["wall_s"], 3)
    r["events_per_second"] = round(r["events"] / r["wall_s"], 1)

biggest = max(r["servers"] for r in rows)
at8 = [r for r in rows if r["servers"] == biggest and r["shards"] == 8]
assessable = cores >= 8
measured = at8[0]["speedup_vs_serial"] if at8 else None
claim = {
    "statement": ">=3x wall-clock speedup at 8 shards vs the serial loop",
    "shards": 8,
    "servers": biggest,
    "cores_required": 8,
    "cores_available": cores,
    "assessable": assessable,
    # The raw measured wall-clock ratio is always recorded — it is a fact
    # about this run either way; `assessable`/`holds` say whether it can
    # back the >=3x claim.
    "measured_speedup": measured,
    "holds": (measured is not None and measured >= 3.0) if assessable else None,
}
if not assessable:
    claim["note"] = (
        f"machine has {cores} core(s); 8 shards + coordinator time-slice, "
        "so the measured wall-clock ratio reflects the OS scheduler, not "
        "the engine. Re-run scripts/bench_shard.sh on >=8 cores to assess."
    )

out = {
    "comment": (
        "Sharded-calendar engine scaling snapshot (DESIGN.md 4i): one "
        "end-to-end trial per cell, wall-clock and events/s over "
        "shard_jobs x server count; shard_jobs=1 is the untouched serial "
        "loop, K>1 the conservative parallel engine. Regenerate with "
        "scripts/bench_shard.sh."
    ),
    "machine": {"hardware_concurrency": cores},
    "cells": rows,
    "speedup_claim": claim,
}
with open("BENCH_shard.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote BENCH_shard.json ({len(rows)} cells, cores={cores}, "
      f"claim assessable={assessable})")
EOF
