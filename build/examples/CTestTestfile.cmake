# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_latency_breakdown "/root/repo/build/examples/latency_breakdown" "8" "60" "200" "0.005")
set_tests_properties(example_latency_breakdown PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner" "300" "0.3" "1800")
set_tests_properties(example_capacity_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_explorer "/root/repo/build/examples/workload_explorer")
set_tests_properties(example_workload_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_whatif "/root/repo/build/examples/cluster_whatif")
set_tests_properties(example_cluster_whatif PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_slo_autoscaler "/root/repo/build/examples/slo_autoscaler")
set_tests_properties(example_slo_autoscaler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
