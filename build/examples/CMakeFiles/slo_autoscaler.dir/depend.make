# Empty dependencies file for slo_autoscaler.
# This may be replaced when dependencies are built.
