file(REMOVE_RECURSE
  "CMakeFiles/slo_autoscaler.dir/slo_autoscaler.cpp.o"
  "CMakeFiles/slo_autoscaler.dir/slo_autoscaler.cpp.o.d"
  "slo_autoscaler"
  "slo_autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
