# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_math[1]_include.cmake")
include("/root/repo/build/tests/tests_dist[1]_include.cmake")
include("/root/repo/build/tests/tests_stats[1]_include.cmake")
include("/root/repo/build/tests/tests_sim[1]_include.cmake")
include("/root/repo/build/tests/tests_cache[1]_include.cmake")
include("/root/repo/build/tests/tests_hashing[1]_include.cmake")
include("/root/repo/build/tests/tests_workload[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_cluster[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
include("/root/repo/build/tests/tests_property[1]_include.cmake")
include("/root/repo/build/tests/tests_tools[1]_include.cmake")
