
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_capacity.cpp" "tests/CMakeFiles/tests_core.dir/core/test_capacity.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_capacity.cpp.o.d"
  "/root/repo/tests/core/test_cliff.cpp" "tests/CMakeFiles/tests_core.dir/core/test_cliff.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_cliff.cpp.o.d"
  "/root/repo/tests/core/test_db_stage.cpp" "tests/CMakeFiles/tests_core.dir/core/test_db_stage.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_db_stage.cpp.o.d"
  "/root/repo/tests/core/test_delta.cpp" "tests/CMakeFiles/tests_core.dir/core/test_delta.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_delta.cpp.o.d"
  "/root/repo/tests/core/test_extensions.cpp" "tests/CMakeFiles/tests_core.dir/core/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_extensions.cpp.o.d"
  "/root/repo/tests/core/test_gixm1.cpp" "tests/CMakeFiles/tests_core.dir/core/test_gixm1.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_gixm1.cpp.o.d"
  "/root/repo/tests/core/test_mmc.cpp" "tests/CMakeFiles/tests_core.dir/core/test_mmc.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_mmc.cpp.o.d"
  "/root/repo/tests/core/test_sensitivity.cpp" "tests/CMakeFiles/tests_core.dir/core/test_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_sensitivity.cpp.o.d"
  "/root/repo/tests/core/test_server_stage.cpp" "tests/CMakeFiles/tests_core.dir/core/test_server_stage.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_server_stage.cpp.o.d"
  "/root/repo/tests/core/test_tail_latency.cpp" "tests/CMakeFiles/tests_core.dir/core/test_tail_latency.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_tail_latency.cpp.o.d"
  "/root/repo/tests/core/test_theorem1.cpp" "tests/CMakeFiles/tests_core.dir/core/test_theorem1.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_theorem1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mclat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mclat_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mclat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mclat_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/mclat_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mclat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mclat_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mclat_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mclat_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
