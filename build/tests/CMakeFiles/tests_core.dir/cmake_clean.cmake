file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/test_capacity.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_capacity.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_cliff.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_cliff.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_db_stage.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_db_stage.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_delta.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_delta.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_extensions.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_extensions.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_gixm1.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_gixm1.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_mmc.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_mmc.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_sensitivity.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_sensitivity.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_server_stage.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_server_stage.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_tail_latency.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_tail_latency.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_theorem1.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_theorem1.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
