file(REMOVE_RECURSE
  "CMakeFiles/tests_cache.dir/cache/test_lru_store.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/test_lru_store.cpp.o.d"
  "CMakeFiles/tests_cache.dir/cache/test_slab_allocator.cpp.o"
  "CMakeFiles/tests_cache.dir/cache/test_slab_allocator.cpp.o.d"
  "tests_cache"
  "tests_cache.pdb"
  "tests_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
