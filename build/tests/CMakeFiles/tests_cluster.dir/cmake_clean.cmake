file(REMOVE_RECURSE
  "CMakeFiles/tests_cluster.dir/cluster/test_delay_station.cpp.o"
  "CMakeFiles/tests_cluster.dir/cluster/test_delay_station.cpp.o.d"
  "CMakeFiles/tests_cluster.dir/cluster/test_end_to_end.cpp.o"
  "CMakeFiles/tests_cluster.dir/cluster/test_end_to_end.cpp.o.d"
  "CMakeFiles/tests_cluster.dir/cluster/test_redundant_assembly.cpp.o"
  "CMakeFiles/tests_cluster.dir/cluster/test_redundant_assembly.cpp.o.d"
  "CMakeFiles/tests_cluster.dir/cluster/test_trace_replay.cpp.o"
  "CMakeFiles/tests_cluster.dir/cluster/test_trace_replay.cpp.o.d"
  "CMakeFiles/tests_cluster.dir/cluster/test_workload_driven.cpp.o"
  "CMakeFiles/tests_cluster.dir/cluster/test_workload_driven.cpp.o.d"
  "tests_cluster"
  "tests_cluster.pdb"
  "tests_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
