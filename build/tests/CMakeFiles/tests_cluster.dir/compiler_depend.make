# Empty compiler generated dependencies file for tests_cluster.
# This may be replaced when dependencies are built.
