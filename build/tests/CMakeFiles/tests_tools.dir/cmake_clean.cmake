file(REMOVE_RECURSE
  "CMakeFiles/tests_tools.dir/tools/test_cli_args.cpp.o"
  "CMakeFiles/tests_tools.dir/tools/test_cli_args.cpp.o.d"
  "tests_tools"
  "tests_tools.pdb"
  "tests_tools[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
