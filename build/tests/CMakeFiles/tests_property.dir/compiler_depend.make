# Empty compiler generated dependencies file for tests_property.
# This may be replaced when dependencies are built.
