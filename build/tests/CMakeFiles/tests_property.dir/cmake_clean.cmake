file(REMOVE_RECURSE
  "CMakeFiles/tests_property.dir/property/test_cache_fuzz.cpp.o"
  "CMakeFiles/tests_property.dir/property/test_cache_fuzz.cpp.o.d"
  "CMakeFiles/tests_property.dir/property/test_model_properties.cpp.o"
  "CMakeFiles/tests_property.dir/property/test_model_properties.cpp.o.d"
  "CMakeFiles/tests_property.dir/property/test_queue_properties.cpp.o"
  "CMakeFiles/tests_property.dir/property/test_queue_properties.cpp.o.d"
  "CMakeFiles/tests_property.dir/property/test_sim_stress.cpp.o"
  "CMakeFiles/tests_property.dir/property/test_sim_stress.cpp.o.d"
  "tests_property"
  "tests_property.pdb"
  "tests_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
