# Empty dependencies file for tests_hashing.
# This may be replaced when dependencies are built.
