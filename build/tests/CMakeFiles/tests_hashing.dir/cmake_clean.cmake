file(REMOVE_RECURSE
  "CMakeFiles/tests_hashing.dir/hashing/test_consistent_hash.cpp.o"
  "CMakeFiles/tests_hashing.dir/hashing/test_consistent_hash.cpp.o.d"
  "CMakeFiles/tests_hashing.dir/hashing/test_hashes.cpp.o"
  "CMakeFiles/tests_hashing.dir/hashing/test_hashes.cpp.o.d"
  "CMakeFiles/tests_hashing.dir/hashing/test_weighted_mapper.cpp.o"
  "CMakeFiles/tests_hashing.dir/hashing/test_weighted_mapper.cpp.o.d"
  "tests_hashing"
  "tests_hashing.pdb"
  "tests_hashing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
