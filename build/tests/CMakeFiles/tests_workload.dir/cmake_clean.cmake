file(REMOVE_RECURSE
  "CMakeFiles/tests_workload.dir/workload/test_arrival_spec.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_arrival_spec.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_keyspace.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_keyspace.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_request_stream.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_request_stream.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_size_model.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_size_model.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_trace.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_trace.cpp.o.d"
  "tests_workload"
  "tests_workload.pdb"
  "tests_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
