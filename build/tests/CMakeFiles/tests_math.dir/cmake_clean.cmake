file(REMOVE_RECURSE
  "CMakeFiles/tests_math.dir/math/test_integration.cpp.o"
  "CMakeFiles/tests_math.dir/math/test_integration.cpp.o.d"
  "CMakeFiles/tests_math.dir/math/test_roots.cpp.o"
  "CMakeFiles/tests_math.dir/math/test_roots.cpp.o.d"
  "CMakeFiles/tests_math.dir/math/test_special.cpp.o"
  "CMakeFiles/tests_math.dir/math/test_special.cpp.o.d"
  "tests_math"
  "tests_math.pdb"
  "tests_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
