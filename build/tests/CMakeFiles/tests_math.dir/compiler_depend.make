# Empty compiler generated dependencies file for tests_math.
# This may be replaced when dependencies are built.
