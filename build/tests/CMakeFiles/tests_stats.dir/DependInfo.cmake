
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_autocorrelation.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_autocorrelation.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_autocorrelation.cpp.o.d"
  "/root/repo/tests/stats/test_histogram.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_histogram.cpp.o.d"
  "/root/repo/tests/stats/test_p2_quantile.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_p2_quantile.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_p2_quantile.cpp.o.d"
  "/root/repo/tests/stats/test_reservoir.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_reservoir.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_reservoir.cpp.o.d"
  "/root/repo/tests/stats/test_summary.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_summary.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_summary.cpp.o.d"
  "/root/repo/tests/stats/test_welford.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_welford.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_welford.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mclat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mclat_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mclat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mclat_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/mclat_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mclat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mclat_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mclat_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mclat_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
