
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dist/test_discrete.cpp" "tests/CMakeFiles/tests_dist.dir/dist/test_discrete.cpp.o" "gcc" "tests/CMakeFiles/tests_dist.dir/dist/test_discrete.cpp.o.d"
  "/root/repo/tests/dist/test_distribution_properties.cpp" "tests/CMakeFiles/tests_dist.dir/dist/test_distribution_properties.cpp.o" "gcc" "tests/CMakeFiles/tests_dist.dir/dist/test_distribution_properties.cpp.o.d"
  "/root/repo/tests/dist/test_empirical.cpp" "tests/CMakeFiles/tests_dist.dir/dist/test_empirical.cpp.o" "gcc" "tests/CMakeFiles/tests_dist.dir/dist/test_empirical.cpp.o.d"
  "/root/repo/tests/dist/test_erlang.cpp" "tests/CMakeFiles/tests_dist.dir/dist/test_erlang.cpp.o" "gcc" "tests/CMakeFiles/tests_dist.dir/dist/test_erlang.cpp.o.d"
  "/root/repo/tests/dist/test_exponential.cpp" "tests/CMakeFiles/tests_dist.dir/dist/test_exponential.cpp.o" "gcc" "tests/CMakeFiles/tests_dist.dir/dist/test_exponential.cpp.o.d"
  "/root/repo/tests/dist/test_generalized_pareto.cpp" "tests/CMakeFiles/tests_dist.dir/dist/test_generalized_pareto.cpp.o" "gcc" "tests/CMakeFiles/tests_dist.dir/dist/test_generalized_pareto.cpp.o.d"
  "/root/repo/tests/dist/test_geometric.cpp" "tests/CMakeFiles/tests_dist.dir/dist/test_geometric.cpp.o" "gcc" "tests/CMakeFiles/tests_dist.dir/dist/test_geometric.cpp.o.d"
  "/root/repo/tests/dist/test_hyperexponential.cpp" "tests/CMakeFiles/tests_dist.dir/dist/test_hyperexponential.cpp.o" "gcc" "tests/CMakeFiles/tests_dist.dir/dist/test_hyperexponential.cpp.o.d"
  "/root/repo/tests/dist/test_misc_distributions.cpp" "tests/CMakeFiles/tests_dist.dir/dist/test_misc_distributions.cpp.o" "gcc" "tests/CMakeFiles/tests_dist.dir/dist/test_misc_distributions.cpp.o.d"
  "/root/repo/tests/dist/test_zipf.cpp" "tests/CMakeFiles/tests_dist.dir/dist/test_zipf.cpp.o" "gcc" "tests/CMakeFiles/tests_dist.dir/dist/test_zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mclat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mclat_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mclat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mclat_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/mclat_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mclat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mclat_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mclat_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mclat_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
