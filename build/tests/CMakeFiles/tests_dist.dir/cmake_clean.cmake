file(REMOVE_RECURSE
  "CMakeFiles/tests_dist.dir/dist/test_discrete.cpp.o"
  "CMakeFiles/tests_dist.dir/dist/test_discrete.cpp.o.d"
  "CMakeFiles/tests_dist.dir/dist/test_distribution_properties.cpp.o"
  "CMakeFiles/tests_dist.dir/dist/test_distribution_properties.cpp.o.d"
  "CMakeFiles/tests_dist.dir/dist/test_empirical.cpp.o"
  "CMakeFiles/tests_dist.dir/dist/test_empirical.cpp.o.d"
  "CMakeFiles/tests_dist.dir/dist/test_erlang.cpp.o"
  "CMakeFiles/tests_dist.dir/dist/test_erlang.cpp.o.d"
  "CMakeFiles/tests_dist.dir/dist/test_exponential.cpp.o"
  "CMakeFiles/tests_dist.dir/dist/test_exponential.cpp.o.d"
  "CMakeFiles/tests_dist.dir/dist/test_generalized_pareto.cpp.o"
  "CMakeFiles/tests_dist.dir/dist/test_generalized_pareto.cpp.o.d"
  "CMakeFiles/tests_dist.dir/dist/test_geometric.cpp.o"
  "CMakeFiles/tests_dist.dir/dist/test_geometric.cpp.o.d"
  "CMakeFiles/tests_dist.dir/dist/test_hyperexponential.cpp.o"
  "CMakeFiles/tests_dist.dir/dist/test_hyperexponential.cpp.o.d"
  "CMakeFiles/tests_dist.dir/dist/test_misc_distributions.cpp.o"
  "CMakeFiles/tests_dist.dir/dist/test_misc_distributions.cpp.o.d"
  "CMakeFiles/tests_dist.dir/dist/test_zipf.cpp.o"
  "CMakeFiles/tests_dist.dir/dist/test_zipf.cpp.o.d"
  "tests_dist"
  "tests_dist.pdb"
  "tests_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
