# Empty compiler generated dependencies file for tests_dist.
# This may be replaced when dependencies are built.
