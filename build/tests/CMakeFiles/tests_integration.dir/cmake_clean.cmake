file(REMOVE_RECURSE
  "CMakeFiles/tests_integration.dir/integration/test_end_to_end_vs_theory.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_end_to_end_vs_theory.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/test_gim1_theory_vs_sim.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_gim1_theory_vs_sim.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/test_gixm1_theory_vs_sim.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_gixm1_theory_vs_sim.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/test_mm1_theory_vs_sim.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_mm1_theory_vs_sim.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/test_mmc_theory_vs_sim.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_mmc_theory_vs_sim.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/test_table3_validation.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/test_table3_validation.cpp.o.d"
  "tests_integration"
  "tests_integration.pdb"
  "tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
