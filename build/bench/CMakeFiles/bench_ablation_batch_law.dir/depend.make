# Empty dependencies file for bench_ablation_batch_law.
# This may be replaced when dependencies are built.
