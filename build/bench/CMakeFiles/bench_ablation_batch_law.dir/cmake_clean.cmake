file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_batch_law.dir/bench_ablation_batch_law.cpp.o"
  "CMakeFiles/bench_ablation_batch_law.dir/bench_ablation_batch_law.cpp.o.d"
  "bench_ablation_batch_law"
  "bench_ablation_batch_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_batch_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
