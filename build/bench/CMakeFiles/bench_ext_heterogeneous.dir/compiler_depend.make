# Empty compiler generated dependencies file for bench_ext_heterogeneous.
# This may be replaced when dependencies are built.
