# Empty dependencies file for bench_ablation_arrival_patterns.
# This may be replaced when dependencies are built.
