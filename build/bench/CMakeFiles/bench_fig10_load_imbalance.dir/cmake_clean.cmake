file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_load_imbalance.dir/bench_fig10_load_imbalance.cpp.o"
  "CMakeFiles/bench_fig10_load_imbalance.dir/bench_fig10_load_imbalance.cpp.o.d"
  "bench_fig10_load_imbalance"
  "bench_fig10_load_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_load_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
