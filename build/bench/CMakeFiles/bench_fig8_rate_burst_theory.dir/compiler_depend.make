# Empty compiler generated dependencies file for bench_fig8_rate_burst_theory.
# This may be replaced when dependencies are built.
