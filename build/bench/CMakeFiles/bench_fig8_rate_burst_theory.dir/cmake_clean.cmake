file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_rate_burst_theory.dir/bench_fig8_rate_burst_theory.cpp.o"
  "CMakeFiles/bench_fig8_rate_burst_theory.dir/bench_fig8_rate_burst_theory.cpp.o.d"
  "bench_fig8_rate_burst_theory"
  "bench_fig8_rate_burst_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_rate_burst_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
