# Empty compiler generated dependencies file for bench_fig7_arrival_rate.
# This may be replaced when dependencies are built.
