file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_delta_eq.dir/bench_ablation_delta_eq.cpp.o"
  "CMakeFiles/bench_ablation_delta_eq.dir/bench_ablation_delta_eq.cpp.o.d"
  "bench_ablation_delta_eq"
  "bench_ablation_delta_eq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_delta_eq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
