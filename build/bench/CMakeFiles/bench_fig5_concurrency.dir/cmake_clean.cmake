file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_concurrency.dir/bench_fig5_concurrency.cpp.o"
  "CMakeFiles/bench_fig5_concurrency.dir/bench_fig5_concurrency.cpp.o.d"
  "bench_fig5_concurrency"
  "bench_fig5_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
