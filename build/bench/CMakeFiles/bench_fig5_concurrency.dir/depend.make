# Empty dependencies file for bench_fig5_concurrency.
# This may be replaced when dependencies are built.
