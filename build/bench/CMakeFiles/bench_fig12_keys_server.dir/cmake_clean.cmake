file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_keys_server.dir/bench_fig12_keys_server.cpp.o"
  "CMakeFiles/bench_fig12_keys_server.dir/bench_fig12_keys_server.cpp.o.d"
  "bench_fig12_keys_server"
  "bench_fig12_keys_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_keys_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
