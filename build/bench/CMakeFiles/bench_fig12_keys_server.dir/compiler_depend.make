# Empty compiler generated dependencies file for bench_fig12_keys_server.
# This may be replaced when dependencies are built.
