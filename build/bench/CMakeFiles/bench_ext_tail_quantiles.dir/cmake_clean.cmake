file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tail_quantiles.dir/bench_ext_tail_quantiles.cpp.o"
  "CMakeFiles/bench_ext_tail_quantiles.dir/bench_ext_tail_quantiles.cpp.o.d"
  "bench_ext_tail_quantiles"
  "bench_ext_tail_quantiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tail_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
