# Empty compiler generated dependencies file for bench_ext_tail_quantiles.
# This may be replaced when dependencies are built.
