# Empty compiler generated dependencies file for bench_ext_db_load.
# This may be replaced when dependencies are built.
