file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_db_load.dir/bench_ext_db_load.cpp.o"
  "CMakeFiles/bench_ext_db_load.dir/bench_ext_db_load.cpp.o.d"
  "bench_ext_db_load"
  "bench_ext_db_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_db_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
