
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_db_load.cpp" "bench/CMakeFiles/bench_ext_db_load.dir/bench_ext_db_load.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_db_load.dir/bench_ext_db_load.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mclat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mclat_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mclat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mclat_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/mclat_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mclat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mclat_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mclat_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mclat_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
