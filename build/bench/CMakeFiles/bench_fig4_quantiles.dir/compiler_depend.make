# Empty compiler generated dependencies file for bench_fig4_quantiles.
# This may be replaced when dependencies are built.
