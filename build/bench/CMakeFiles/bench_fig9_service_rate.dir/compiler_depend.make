# Empty compiler generated dependencies file for bench_fig9_service_rate.
# This may be replaced when dependencies are built.
