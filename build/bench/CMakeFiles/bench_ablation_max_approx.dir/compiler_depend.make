# Empty compiler generated dependencies file for bench_ablation_max_approx.
# This may be replaced when dependencies are built.
