# Empty compiler generated dependencies file for bench_table4_cliff.
# This may be replaced when dependencies are built.
