file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cliff.dir/bench_table4_cliff.cpp.o"
  "CMakeFiles/bench_table4_cliff.dir/bench_table4_cliff.cpp.o.d"
  "bench_table4_cliff"
  "bench_table4_cliff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cliff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
