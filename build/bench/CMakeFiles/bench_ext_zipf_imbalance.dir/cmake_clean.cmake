file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_zipf_imbalance.dir/bench_ext_zipf_imbalance.cpp.o"
  "CMakeFiles/bench_ext_zipf_imbalance.dir/bench_ext_zipf_imbalance.cpp.o.d"
  "bench_ext_zipf_imbalance"
  "bench_ext_zipf_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_zipf_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
