# Empty compiler generated dependencies file for bench_ext_zipf_imbalance.
# This may be replaced when dependencies are built.
