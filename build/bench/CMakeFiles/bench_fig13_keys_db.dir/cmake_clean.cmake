file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_keys_db.dir/bench_fig13_keys_db.cpp.o"
  "CMakeFiles/bench_fig13_keys_db.dir/bench_fig13_keys_db.cpp.o.d"
  "bench_fig13_keys_db"
  "bench_fig13_keys_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_keys_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
