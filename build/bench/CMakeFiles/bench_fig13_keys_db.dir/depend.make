# Empty dependencies file for bench_fig13_keys_db.
# This may be replaced when dependencies are built.
