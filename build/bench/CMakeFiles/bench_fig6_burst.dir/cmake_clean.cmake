file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_burst.dir/bench_fig6_burst.cpp.o"
  "CMakeFiles/bench_fig6_burst.dir/bench_fig6_burst.cpp.o.d"
  "bench_fig6_burst"
  "bench_fig6_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
