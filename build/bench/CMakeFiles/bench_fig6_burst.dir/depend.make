# Empty dependencies file for bench_fig6_burst.
# This may be replaced when dependencies are built.
