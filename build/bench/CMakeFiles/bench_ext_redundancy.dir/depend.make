# Empty dependencies file for bench_ext_redundancy.
# This may be replaced when dependencies are built.
