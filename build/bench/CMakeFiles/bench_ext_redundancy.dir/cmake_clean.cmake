file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_redundancy.dir/bench_ext_redundancy.cpp.o"
  "CMakeFiles/bench_ext_redundancy.dir/bench_ext_redundancy.cpp.o.d"
  "bench_ext_redundancy"
  "bench_ext_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
