file(REMOVE_RECURSE
  "libmclat_cache.a"
)
