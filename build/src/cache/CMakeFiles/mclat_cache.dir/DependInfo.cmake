
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/lru_store.cpp" "src/cache/CMakeFiles/mclat_cache.dir/lru_store.cpp.o" "gcc" "src/cache/CMakeFiles/mclat_cache.dir/lru_store.cpp.o.d"
  "/root/repo/src/cache/slab_allocator.cpp" "src/cache/CMakeFiles/mclat_cache.dir/slab_allocator.cpp.o" "gcc" "src/cache/CMakeFiles/mclat_cache.dir/slab_allocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mclat_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
