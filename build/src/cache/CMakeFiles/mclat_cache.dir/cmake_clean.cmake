file(REMOVE_RECURSE
  "CMakeFiles/mclat_cache.dir/lru_store.cpp.o"
  "CMakeFiles/mclat_cache.dir/lru_store.cpp.o.d"
  "CMakeFiles/mclat_cache.dir/slab_allocator.cpp.o"
  "CMakeFiles/mclat_cache.dir/slab_allocator.cpp.o.d"
  "libmclat_cache.a"
  "libmclat_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclat_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
