# Empty dependencies file for mclat_cache.
# This may be replaced when dependencies are built.
