file(REMOVE_RECURSE
  "CMakeFiles/mclat_stats.dir/autocorrelation.cpp.o"
  "CMakeFiles/mclat_stats.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/mclat_stats.dir/histogram.cpp.o"
  "CMakeFiles/mclat_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/mclat_stats.dir/p2_quantile.cpp.o"
  "CMakeFiles/mclat_stats.dir/p2_quantile.cpp.o.d"
  "CMakeFiles/mclat_stats.dir/reservoir.cpp.o"
  "CMakeFiles/mclat_stats.dir/reservoir.cpp.o.d"
  "CMakeFiles/mclat_stats.dir/summary.cpp.o"
  "CMakeFiles/mclat_stats.dir/summary.cpp.o.d"
  "libmclat_stats.a"
  "libmclat_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclat_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
