# Empty compiler generated dependencies file for mclat_stats.
# This may be replaced when dependencies are built.
