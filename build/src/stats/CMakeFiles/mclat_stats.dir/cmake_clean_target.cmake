file(REMOVE_RECURSE
  "libmclat_stats.a"
)
