file(REMOVE_RECURSE
  "libmclat_sim.a"
)
