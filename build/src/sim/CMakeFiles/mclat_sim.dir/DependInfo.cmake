
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/multi_station.cpp" "src/sim/CMakeFiles/mclat_sim.dir/multi_station.cpp.o" "gcc" "src/sim/CMakeFiles/mclat_sim.dir/multi_station.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/mclat_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/mclat_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/source.cpp" "src/sim/CMakeFiles/mclat_sim.dir/source.cpp.o" "gcc" "src/sim/CMakeFiles/mclat_sim.dir/source.cpp.o.d"
  "/root/repo/src/sim/station.cpp" "src/sim/CMakeFiles/mclat_sim.dir/station.cpp.o" "gcc" "src/sim/CMakeFiles/mclat_sim.dir/station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mclat_math.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mclat_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mclat_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
