file(REMOVE_RECURSE
  "CMakeFiles/mclat_sim.dir/multi_station.cpp.o"
  "CMakeFiles/mclat_sim.dir/multi_station.cpp.o.d"
  "CMakeFiles/mclat_sim.dir/simulator.cpp.o"
  "CMakeFiles/mclat_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mclat_sim.dir/source.cpp.o"
  "CMakeFiles/mclat_sim.dir/source.cpp.o.d"
  "CMakeFiles/mclat_sim.dir/station.cpp.o"
  "CMakeFiles/mclat_sim.dir/station.cpp.o.d"
  "libmclat_sim.a"
  "libmclat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
