# Empty compiler generated dependencies file for mclat_sim.
# This may be replaced when dependencies are built.
