file(REMOVE_RECURSE
  "CMakeFiles/mclat_core.dir/capacity.cpp.o"
  "CMakeFiles/mclat_core.dir/capacity.cpp.o.d"
  "CMakeFiles/mclat_core.dir/cliff.cpp.o"
  "CMakeFiles/mclat_core.dir/cliff.cpp.o.d"
  "CMakeFiles/mclat_core.dir/db_stage.cpp.o"
  "CMakeFiles/mclat_core.dir/db_stage.cpp.o.d"
  "CMakeFiles/mclat_core.dir/delta.cpp.o"
  "CMakeFiles/mclat_core.dir/delta.cpp.o.d"
  "CMakeFiles/mclat_core.dir/gixm1.cpp.o"
  "CMakeFiles/mclat_core.dir/gixm1.cpp.o.d"
  "CMakeFiles/mclat_core.dir/mmc.cpp.o"
  "CMakeFiles/mclat_core.dir/mmc.cpp.o.d"
  "CMakeFiles/mclat_core.dir/redundancy.cpp.o"
  "CMakeFiles/mclat_core.dir/redundancy.cpp.o.d"
  "CMakeFiles/mclat_core.dir/sensitivity.cpp.o"
  "CMakeFiles/mclat_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/mclat_core.dir/server_stage.cpp.o"
  "CMakeFiles/mclat_core.dir/server_stage.cpp.o.d"
  "CMakeFiles/mclat_core.dir/theorem1.cpp.o"
  "CMakeFiles/mclat_core.dir/theorem1.cpp.o.d"
  "libmclat_core.a"
  "libmclat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
