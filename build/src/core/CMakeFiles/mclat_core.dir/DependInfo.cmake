
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capacity.cpp" "src/core/CMakeFiles/mclat_core.dir/capacity.cpp.o" "gcc" "src/core/CMakeFiles/mclat_core.dir/capacity.cpp.o.d"
  "/root/repo/src/core/cliff.cpp" "src/core/CMakeFiles/mclat_core.dir/cliff.cpp.o" "gcc" "src/core/CMakeFiles/mclat_core.dir/cliff.cpp.o.d"
  "/root/repo/src/core/db_stage.cpp" "src/core/CMakeFiles/mclat_core.dir/db_stage.cpp.o" "gcc" "src/core/CMakeFiles/mclat_core.dir/db_stage.cpp.o.d"
  "/root/repo/src/core/delta.cpp" "src/core/CMakeFiles/mclat_core.dir/delta.cpp.o" "gcc" "src/core/CMakeFiles/mclat_core.dir/delta.cpp.o.d"
  "/root/repo/src/core/gixm1.cpp" "src/core/CMakeFiles/mclat_core.dir/gixm1.cpp.o" "gcc" "src/core/CMakeFiles/mclat_core.dir/gixm1.cpp.o.d"
  "/root/repo/src/core/mmc.cpp" "src/core/CMakeFiles/mclat_core.dir/mmc.cpp.o" "gcc" "src/core/CMakeFiles/mclat_core.dir/mmc.cpp.o.d"
  "/root/repo/src/core/redundancy.cpp" "src/core/CMakeFiles/mclat_core.dir/redundancy.cpp.o" "gcc" "src/core/CMakeFiles/mclat_core.dir/redundancy.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/mclat_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/mclat_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/server_stage.cpp" "src/core/CMakeFiles/mclat_core.dir/server_stage.cpp.o" "gcc" "src/core/CMakeFiles/mclat_core.dir/server_stage.cpp.o.d"
  "/root/repo/src/core/theorem1.cpp" "src/core/CMakeFiles/mclat_core.dir/theorem1.cpp.o" "gcc" "src/core/CMakeFiles/mclat_core.dir/theorem1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mclat_math.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mclat_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mclat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/mclat_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
