# Empty dependencies file for mclat_core.
# This may be replaced when dependencies are built.
