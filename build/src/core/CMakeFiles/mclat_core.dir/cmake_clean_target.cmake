file(REMOVE_RECURSE
  "libmclat_core.a"
)
