# Empty compiler generated dependencies file for mclat_dist.
# This may be replaced when dependencies are built.
