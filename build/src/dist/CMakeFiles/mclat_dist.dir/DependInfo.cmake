
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/deterministic.cpp" "src/dist/CMakeFiles/mclat_dist.dir/deterministic.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/deterministic.cpp.o.d"
  "/root/repo/src/dist/discrete.cpp" "src/dist/CMakeFiles/mclat_dist.dir/discrete.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/discrete.cpp.o.d"
  "/root/repo/src/dist/distribution.cpp" "src/dist/CMakeFiles/mclat_dist.dir/distribution.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/distribution.cpp.o.d"
  "/root/repo/src/dist/empirical.cpp" "src/dist/CMakeFiles/mclat_dist.dir/empirical.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/empirical.cpp.o.d"
  "/root/repo/src/dist/erlang.cpp" "src/dist/CMakeFiles/mclat_dist.dir/erlang.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/erlang.cpp.o.d"
  "/root/repo/src/dist/exponential.cpp" "src/dist/CMakeFiles/mclat_dist.dir/exponential.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/exponential.cpp.o.d"
  "/root/repo/src/dist/generalized_pareto.cpp" "src/dist/CMakeFiles/mclat_dist.dir/generalized_pareto.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/generalized_pareto.cpp.o.d"
  "/root/repo/src/dist/geometric.cpp" "src/dist/CMakeFiles/mclat_dist.dir/geometric.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/geometric.cpp.o.d"
  "/root/repo/src/dist/hyperexponential.cpp" "src/dist/CMakeFiles/mclat_dist.dir/hyperexponential.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/hyperexponential.cpp.o.d"
  "/root/repo/src/dist/lognormal.cpp" "src/dist/CMakeFiles/mclat_dist.dir/lognormal.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/lognormal.cpp.o.d"
  "/root/repo/src/dist/uniform.cpp" "src/dist/CMakeFiles/mclat_dist.dir/uniform.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/uniform.cpp.o.d"
  "/root/repo/src/dist/weibull.cpp" "src/dist/CMakeFiles/mclat_dist.dir/weibull.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/weibull.cpp.o.d"
  "/root/repo/src/dist/zipf.cpp" "src/dist/CMakeFiles/mclat_dist.dir/zipf.cpp.o" "gcc" "src/dist/CMakeFiles/mclat_dist.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mclat_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
