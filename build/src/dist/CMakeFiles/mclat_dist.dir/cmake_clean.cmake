file(REMOVE_RECURSE
  "CMakeFiles/mclat_dist.dir/deterministic.cpp.o"
  "CMakeFiles/mclat_dist.dir/deterministic.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/discrete.cpp.o"
  "CMakeFiles/mclat_dist.dir/discrete.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/distribution.cpp.o"
  "CMakeFiles/mclat_dist.dir/distribution.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/empirical.cpp.o"
  "CMakeFiles/mclat_dist.dir/empirical.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/erlang.cpp.o"
  "CMakeFiles/mclat_dist.dir/erlang.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/exponential.cpp.o"
  "CMakeFiles/mclat_dist.dir/exponential.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/generalized_pareto.cpp.o"
  "CMakeFiles/mclat_dist.dir/generalized_pareto.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/geometric.cpp.o"
  "CMakeFiles/mclat_dist.dir/geometric.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/hyperexponential.cpp.o"
  "CMakeFiles/mclat_dist.dir/hyperexponential.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/lognormal.cpp.o"
  "CMakeFiles/mclat_dist.dir/lognormal.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/uniform.cpp.o"
  "CMakeFiles/mclat_dist.dir/uniform.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/weibull.cpp.o"
  "CMakeFiles/mclat_dist.dir/weibull.cpp.o.d"
  "CMakeFiles/mclat_dist.dir/zipf.cpp.o"
  "CMakeFiles/mclat_dist.dir/zipf.cpp.o.d"
  "libmclat_dist.a"
  "libmclat_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclat_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
