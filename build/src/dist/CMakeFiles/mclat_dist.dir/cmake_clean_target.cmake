file(REMOVE_RECURSE
  "libmclat_dist.a"
)
