file(REMOVE_RECURSE
  "libmclat_math.a"
)
