# Empty dependencies file for mclat_math.
# This may be replaced when dependencies are built.
