
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/integration.cpp" "src/math/CMakeFiles/mclat_math.dir/integration.cpp.o" "gcc" "src/math/CMakeFiles/mclat_math.dir/integration.cpp.o.d"
  "/root/repo/src/math/roots.cpp" "src/math/CMakeFiles/mclat_math.dir/roots.cpp.o" "gcc" "src/math/CMakeFiles/mclat_math.dir/roots.cpp.o.d"
  "/root/repo/src/math/special.cpp" "src/math/CMakeFiles/mclat_math.dir/special.cpp.o" "gcc" "src/math/CMakeFiles/mclat_math.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
