file(REMOVE_RECURSE
  "CMakeFiles/mclat_math.dir/integration.cpp.o"
  "CMakeFiles/mclat_math.dir/integration.cpp.o.d"
  "CMakeFiles/mclat_math.dir/roots.cpp.o"
  "CMakeFiles/mclat_math.dir/roots.cpp.o.d"
  "CMakeFiles/mclat_math.dir/special.cpp.o"
  "CMakeFiles/mclat_math.dir/special.cpp.o.d"
  "libmclat_math.a"
  "libmclat_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclat_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
