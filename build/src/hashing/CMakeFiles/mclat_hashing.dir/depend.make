# Empty dependencies file for mclat_hashing.
# This may be replaced when dependencies are built.
