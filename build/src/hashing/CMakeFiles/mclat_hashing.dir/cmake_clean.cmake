file(REMOVE_RECURSE
  "CMakeFiles/mclat_hashing.dir/consistent_hash.cpp.o"
  "CMakeFiles/mclat_hashing.dir/consistent_hash.cpp.o.d"
  "CMakeFiles/mclat_hashing.dir/key_mapper.cpp.o"
  "CMakeFiles/mclat_hashing.dir/key_mapper.cpp.o.d"
  "CMakeFiles/mclat_hashing.dir/weighted_mapper.cpp.o"
  "CMakeFiles/mclat_hashing.dir/weighted_mapper.cpp.o.d"
  "libmclat_hashing.a"
  "libmclat_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclat_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
