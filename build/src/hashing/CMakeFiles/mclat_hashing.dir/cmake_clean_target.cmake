file(REMOVE_RECURSE
  "libmclat_hashing.a"
)
