
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hashing/consistent_hash.cpp" "src/hashing/CMakeFiles/mclat_hashing.dir/consistent_hash.cpp.o" "gcc" "src/hashing/CMakeFiles/mclat_hashing.dir/consistent_hash.cpp.o.d"
  "/root/repo/src/hashing/key_mapper.cpp" "src/hashing/CMakeFiles/mclat_hashing.dir/key_mapper.cpp.o" "gcc" "src/hashing/CMakeFiles/mclat_hashing.dir/key_mapper.cpp.o.d"
  "/root/repo/src/hashing/weighted_mapper.cpp" "src/hashing/CMakeFiles/mclat_hashing.dir/weighted_mapper.cpp.o" "gcc" "src/hashing/CMakeFiles/mclat_hashing.dir/weighted_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mclat_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
