
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival_spec.cpp" "src/workload/CMakeFiles/mclat_workload.dir/arrival_spec.cpp.o" "gcc" "src/workload/CMakeFiles/mclat_workload.dir/arrival_spec.cpp.o.d"
  "/root/repo/src/workload/keyspace.cpp" "src/workload/CMakeFiles/mclat_workload.dir/keyspace.cpp.o" "gcc" "src/workload/CMakeFiles/mclat_workload.dir/keyspace.cpp.o.d"
  "/root/repo/src/workload/request_stream.cpp" "src/workload/CMakeFiles/mclat_workload.dir/request_stream.cpp.o" "gcc" "src/workload/CMakeFiles/mclat_workload.dir/request_stream.cpp.o.d"
  "/root/repo/src/workload/size_model.cpp" "src/workload/CMakeFiles/mclat_workload.dir/size_model.cpp.o" "gcc" "src/workload/CMakeFiles/mclat_workload.dir/size_model.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/mclat_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/mclat_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mclat_math.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mclat_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/mclat_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
