file(REMOVE_RECURSE
  "CMakeFiles/mclat_workload.dir/arrival_spec.cpp.o"
  "CMakeFiles/mclat_workload.dir/arrival_spec.cpp.o.d"
  "CMakeFiles/mclat_workload.dir/keyspace.cpp.o"
  "CMakeFiles/mclat_workload.dir/keyspace.cpp.o.d"
  "CMakeFiles/mclat_workload.dir/request_stream.cpp.o"
  "CMakeFiles/mclat_workload.dir/request_stream.cpp.o.d"
  "CMakeFiles/mclat_workload.dir/size_model.cpp.o"
  "CMakeFiles/mclat_workload.dir/size_model.cpp.o.d"
  "CMakeFiles/mclat_workload.dir/trace.cpp.o"
  "CMakeFiles/mclat_workload.dir/trace.cpp.o.d"
  "libmclat_workload.a"
  "libmclat_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclat_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
