file(REMOVE_RECURSE
  "libmclat_workload.a"
)
