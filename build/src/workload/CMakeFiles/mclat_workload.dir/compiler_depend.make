# Empty compiler generated dependencies file for mclat_workload.
# This may be replaced when dependencies are built.
