file(REMOVE_RECURSE
  "libmclat_cluster.a"
)
