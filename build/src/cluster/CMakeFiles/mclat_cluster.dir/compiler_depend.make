# Empty compiler generated dependencies file for mclat_cluster.
# This may be replaced when dependencies are built.
