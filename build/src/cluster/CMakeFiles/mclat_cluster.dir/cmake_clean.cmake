file(REMOVE_RECURSE
  "CMakeFiles/mclat_cluster.dir/delay_station.cpp.o"
  "CMakeFiles/mclat_cluster.dir/delay_station.cpp.o.d"
  "CMakeFiles/mclat_cluster.dir/end_to_end.cpp.o"
  "CMakeFiles/mclat_cluster.dir/end_to_end.cpp.o.d"
  "CMakeFiles/mclat_cluster.dir/trace_replay.cpp.o"
  "CMakeFiles/mclat_cluster.dir/trace_replay.cpp.o.d"
  "CMakeFiles/mclat_cluster.dir/workload_driven.cpp.o"
  "CMakeFiles/mclat_cluster.dir/workload_driven.cpp.o.d"
  "libmclat_cluster.a"
  "libmclat_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclat_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
