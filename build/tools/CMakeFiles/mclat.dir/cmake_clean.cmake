file(REMOVE_RECURSE
  "CMakeFiles/mclat.dir/mclat_cli.cpp.o"
  "CMakeFiles/mclat.dir/mclat_cli.cpp.o.d"
  "mclat"
  "mclat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
