# Empty dependencies file for mclat.
# This may be replaced when dependencies are built.
