# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_estimate "/root/repo/build/tools/mclat" "estimate" "--servers" "6" "--kps" "55")
set_tests_properties(cli_estimate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate_json "/root/repo/build/tools/mclat" "estimate" "--json")
set_tests_properties(cli_estimate_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tail "/root/repo/build/tools/mclat" "tail" "--k" "0.999")
set_tests_properties(cli_tail PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_cliff "/root/repo/build/tools/mclat" "cliff" "--xi" "0.3")
set_tests_properties(cli_cliff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_cliff_table "/root/repo/build/tools/mclat" "cliff" "--table")
set_tests_properties(cli_cliff_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_whatif "/root/repo/build/tools/mclat" "whatif")
set_tests_properties(cli_whatif PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_redundancy "/root/repo/build/tools/mclat" "redundancy" "--kps" "15" "--r" "0")
set_tests_properties(cli_redundancy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/mclat" "simulate" "--seconds" "1" "--requests" "2000")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unstable_fails "/root/repo/build/tools/mclat" "estimate" "--kps" "90")
set_tests_properties(cli_unstable_fails PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_flag_fails "/root/repo/build/tools/mclat" "estimate" "--bogus" "1")
set_tests_properties(cli_unknown_flag_fails PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_replay "/root/repo/build/tools/mclat" "replay" "--requests" "1000" "--n" "20")
set_tests_properties(cli_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_capacity "/root/repo/build/tools/mclat" "capacity" "--budget" "1500")
set_tests_properties(cli_capacity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
